"""CSV text extraction.

A small from-scratch CSV reader (quoted fields, embedded commas,
doubled quotes, CRLF) that joins cells with spaces so every cell value
is independently searchable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.formats.base import DocumentFormat


def parse_csv(content: bytes) -> List[List[bytes]]:
    """Rows of cells; tolerant of malformed quoting (best effort)."""
    rows: List[List[bytes]] = []
    row: List[bytes] = []
    cell = bytearray()
    in_quotes = False
    i = 0
    n = len(content)
    while i < n:
        byte = content[i]
        if in_quotes:
            if byte == 0x22:  # '"'
                if content[i + 1 : i + 2] == b'"':  # doubled quote
                    cell.append(0x22)
                    i += 2
                    continue
                in_quotes = False
                i += 1
            else:
                cell.append(byte)
                i += 1
        elif byte == 0x22 and not cell:
            in_quotes = True
            i += 1
        elif byte == 0x2C:  # ","
            row.append(bytes(cell))
            cell = bytearray()
            i += 1
        elif byte == 0x0A:  # "\n"
            row.append(bytes(cell.rstrip(b"\r")))
            rows.append(row)
            row = []
            cell = bytearray()
            i += 1
        else:
            cell.append(byte)
            i += 1
    if cell or row:
        row.append(bytes(cell.rstrip(b"\r")))
        rows.append(row)
    return rows


def extract_csv_text(content: bytes) -> bytes:
    """All cell values, space-separated within rows, newline between."""
    return b"\n".join(b" ".join(row) for row in parse_csv(content))


class CsvFormat(DocumentFormat):
    """Comma-separated value files."""

    name = "csv"
    extensions: Tuple[str, ...] = (".csv", ".tsv")

    def extract_text(self, content: bytes) -> bytes:
        return extract_csv_text(content)
