"""Plain text: the identity format (and the registry default)."""

from __future__ import annotations

from typing import Tuple

from repro.formats.base import DocumentFormat


class PlainTextFormat(DocumentFormat):
    """Bytes in, same bytes out — the paper's benchmark format."""

    name = "plain"
    extensions: Tuple[str, ...] = (".txt", ".log", ".text")

    def extract_text(self, content: bytes) -> bytes:
        return content
