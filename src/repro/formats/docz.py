"""DocZ — a synthetic word-processor container format.

The paper's benchmark was *converted from* word-processor files we
cannot have.  DocZ stands in for them: a binary container with a magic
header, a metadata section, and length-prefixed *runs* of styled text —
enough structure that extraction genuinely costs more than plain text
(the effect the paper predicts for complex formats), while remaining
fully specified here.

Layout (all integers little-endian):

.. code-block:: text

    magic   "DOCZ\\x01"                      5 bytes
    meta    u16 count, then count x (u16 key len, key, u16 val len, val)
    body    u32 run count, then per run:
              u8  style flags (bold/italic/...; ignored by extraction)
              u32 text length
              text bytes (UTF-8)

The writer and reader are both here so mixed-format corpora can be
generated and indexed end to end; the reader tolerates truncation
(extracts what it can).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.formats.base import DocumentFormat

MAGIC = b"DOCZ\x01"


def write_docz(
    runs: List[Tuple[int, bytes]], metadata: Optional[Dict[str, str]] = None
) -> bytes:
    """Serialize styled runs (and optional metadata) into DocZ bytes."""
    out = bytearray(MAGIC)
    metadata = metadata or {}
    out += struct.pack("<H", len(metadata))
    for key, value in metadata.items():
        key_b = key.encode("utf-8")
        value_b = value.encode("utf-8")
        out += struct.pack("<H", len(key_b)) + key_b
        out += struct.pack("<H", len(value_b)) + value_b
    out += struct.pack("<I", len(runs))
    for style, text in runs:
        if not 0 <= style < 256:
            raise ValueError(f"style flags must fit a byte, got {style}")
        out += struct.pack("<BI", style, len(text)) + text
    return bytes(out)


def read_docz(content: bytes) -> Tuple[Dict[str, str], List[Tuple[int, bytes]]]:
    """Parse DocZ bytes into (metadata, runs); truncation-tolerant."""
    if not content.startswith(MAGIC):
        raise ValueError("not a DocZ document (bad magic)")
    offset = len(MAGIC)
    metadata: Dict[str, str] = {}
    runs: List[Tuple[int, bytes]] = []
    try:
        (meta_count,) = struct.unpack_from("<H", content, offset)
        offset += 2
        for _ in range(meta_count):
            (key_len,) = struct.unpack_from("<H", content, offset)
            offset += 2
            key = content[offset : offset + key_len].decode("utf-8", "replace")
            offset += key_len
            (value_len,) = struct.unpack_from("<H", content, offset)
            offset += 2
            value = content[offset : offset + value_len].decode(
                "utf-8", "replace"
            )
            offset += value_len
            metadata[key] = value
        (run_count,) = struct.unpack_from("<I", content, offset)
        offset += 4
        for _ in range(run_count):
            style, text_len = struct.unpack_from("<BI", content, offset)
            offset += 5
            runs.append((style, content[offset : offset + text_len]))
            offset += text_len
    except struct.error:
        pass  # truncated: keep whatever parsed
    return metadata, runs


class DoczFormat(DocumentFormat):
    """The synthetic word-processor format."""

    name = "docz"
    extensions: Tuple[str, ...] = (".docz",)
    magic = MAGIC

    def extract_text(self, content: bytes) -> bytes:
        try:
            metadata, runs = read_docz(content)
        except ValueError:
            return b""
        parts = [value.encode("utf-8") for value in metadata.values()]
        parts.extend(text for _, text in runs)
        return b" ".join(parts)
