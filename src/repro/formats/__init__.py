"""Document format handling — the paper's first-named extension.

Section 3 of the paper: the benchmark was converted to plain text
because "handling complex word processor formats directly in the term
extractor would have been too distracting at the time, even though it
would be an interesting extension now"; "more file formats" is listed
as future work.  This package is that extension:

* a :class:`FormatRegistry` that detects a file's format from its
  extension and leading bytes (magic);
* extractors that turn each format's bytes into plain text for the
  tokenizer: plain text (identity), HTML (from-scratch tag stripper
  with entity decoding), Markdown (markup stripper), CSV (cell
  extraction), and DocZ — a synthetic "word processor" container
  format, with both a writer and a reader, standing in for the
  proprietary formats we cannot ship;
* corpus support for mixed-format benchmarks
  (:func:`repro.formats.mixed.generate_mixed_corpus`).

Format extraction plugs into the engine as a preprocessing step of
stage 2: scanning complex formats costs more CPU, exactly the "this
part would take longer" effect the paper predicts, which the
format-cost ablation quantifies.
"""

from repro.formats.base import DocumentFormat, FormatRegistry, default_registry
from repro.formats.html import HtmlFormat, strip_html
from repro.formats.markdown import MarkdownFormat, strip_markdown
from repro.formats.csvfmt import CsvFormat, extract_csv_text
from repro.formats.docz import DoczFormat, read_docz, write_docz
from repro.formats.plain import PlainTextFormat

__all__ = [
    "CsvFormat",
    "DoczFormat",
    "DocumentFormat",
    "FormatRegistry",
    "HtmlFormat",
    "MarkdownFormat",
    "PlainTextFormat",
    "default_registry",
    "extract_csv_text",
    "read_docz",
    "strip_html",
    "strip_markdown",
    "write_docz",
]
