"""Markdown text extraction.

Strips the markup that would otherwise pollute the index (link URLs,
code fences, emphasis markers, heading hashes) while keeping all prose
— link *labels* stay, link targets go.
"""

from __future__ import annotations

from typing import Tuple

from repro.formats.base import DocumentFormat


def strip_markdown(content: bytes) -> bytes:
    """Extract prose from Markdown bytes."""
    out = []
    in_code_fence = False
    for line in content.split(b"\n"):
        stripped = line.strip()
        if stripped.startswith(b"```") or stripped.startswith(b"~~~"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        out.append(_strip_inline(_strip_line_prefix(line)))
    return b"\n".join(out)


def _strip_line_prefix(line: bytes) -> bytes:
    """Remove heading hashes, blockquote markers and list bullets."""
    stripped = line.lstrip()
    while stripped[:1] in (b"#", b">"):
        stripped = stripped[1:].lstrip()
    if stripped[:2] in (b"- ", b"* ", b"+ "):
        stripped = stripped[2:]
    return stripped


def _strip_inline(line: bytes) -> bytes:
    """Drop emphasis markers, inline code ticks and link targets."""
    out = bytearray()
    i = 0
    n = len(line)
    while i < n:
        byte = line[i]
        if byte in b"*_`":
            out.append(0x20)
            i += 1
        elif byte == 0x5B:  # "[" — keep the label
            i += 1
        elif byte == 0x5D and i + 1 < n and line[i + 1 : i + 2] == b"(":
            # "](url)" — drop the target
            close = line.find(b")", i + 2)
            if close == -1:
                out.append(byte)
                i += 1
            else:
                out.append(0x20)
                i = close + 1
        elif byte == 0x21 and line[i + 1 : i + 2] == b"[":  # image "!["
            i += 1
        else:
            out.append(byte)
            i += 1
    return bytes(out)


class MarkdownFormat(DocumentFormat):
    """Markdown documents."""

    name = "markdown"
    extensions: Tuple[str, ...] = (".md", ".markdown")

    def extract_text(self, content: bytes) -> bytes:
        return strip_markdown(content)
