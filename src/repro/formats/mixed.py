"""Mixed-format benchmark corpora.

Takes the plain-text corpus the generator produces and re-encodes a
seeded fraction of the files into richer formats (HTML, Markdown, CSV,
DocZ), producing the "more file formats, larger benchmarks" workload of
the paper's future-work list.  Encoding preserves the terms: extracting
text back out of any format and tokenizing yields the same term set as
the original plain text, which the round-trip tests assert.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.corpus.generator import CorpusGenerator
from repro.corpus.profiles import CorpusProfile
from repro.formats.docz import write_docz
from repro.fsmodel.vfs import VirtualFileSystem

#: Default composition of a mixed corpus (fractions sum to 1).
DEFAULT_MIX: Dict[str, float] = {
    "plain": 0.40,
    "html": 0.25,
    "markdown": 0.15,
    "csv": 0.10,
    "docz": 0.10,
}

_EXTENSION = {
    "plain": ".txt",
    "html": ".html",
    "markdown": ".md",
    "csv": ".csv",
    "docz": ".docz",
}


@dataclass
class MixedCorpus:
    """A generated corpus whose files span several formats."""

    fs: VirtualFileSystem
    profile: CorpusProfile
    format_counts: Dict[str, int] = field(default_factory=dict)


def generate_mixed_corpus(
    profile: CorpusProfile, mix: Dict[str, float] = None
) -> MixedCorpus:
    """Generate a corpus and re-encode files per the format ``mix``."""
    mix = dict(DEFAULT_MIX if mix is None else mix)
    unknown = set(mix) - set(_EXTENSION)
    if unknown:
        raise ValueError(f"unknown formats in mix: {sorted(unknown)}")
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("mix weights must sum to a positive value")

    plain = CorpusGenerator(profile).generate()
    rng = random.Random(profile.seed + 99)
    names = sorted(mix)
    weights = [mix[name] / total for name in names]

    fs = VirtualFileSystem()
    counts = {name: 0 for name in names}
    for ref in plain.fs.list_files():
        text = plain.fs.read_file(ref.path)
        fmt = rng.choices(names, weights)[0]
        counts[fmt] += 1
        new_path = _swap_extension(ref.path, _EXTENSION[fmt])
        _ensure_parents(fs, new_path)
        fs.write_file(new_path, _ENCODERS[fmt](text, rng))
    return MixedCorpus(fs=fs, profile=profile, format_counts=counts)


# -- per-format encoders (plain text -> format bytes) -----------------------


def _encode_plain(text: bytes, rng: random.Random) -> bytes:
    return text


def _encode_html(text: bytes, rng: random.Random) -> bytes:
    paragraphs = b"\n".join(
        b"<p>" + line + b"</p>" for line in text.split(b"\n") if line
    )
    return (
        b"<!DOCTYPE html>\n<html>\n<head>\n"
        b"<title>generated document</title>\n"
        b"<style>p { margin: 0 } b { color: red }</style>\n"
        b"<script>var ignored = 1;</script>\n"
        b"</head>\n<body>\n" + paragraphs + b"\n</body>\n</html>\n"
    )


def _encode_markdown(text: bytes, rng: random.Random) -> bytes:
    lines = [line for line in text.split(b"\n")]
    out = [b"# generated document", b""]
    for i, line in enumerate(lines):
        if line and i % 7 == 3:
            out.append(b"- " + line)
        elif line and i % 11 == 5:
            out.append(b"**" + line + b"**")
        else:
            out.append(line)
    return b"\n".join(out)


def _encode_csv(text: bytes, rng: random.Random) -> bytes:
    # Words become cells, 6 per row; some quoted.
    words = text.split()
    rows = []
    for start in range(0, len(words), 6):
        cells = []
        for word in words[start : start + 6]:
            if rng.random() < 0.1:
                cells.append(b'"' + word + b'"')
            else:
                cells.append(word)
        rows.append(b",".join(cells))
    return b"\n".join(rows)


def _encode_docz(text: bytes, rng: random.Random) -> bytes:
    # Split the text into a handful of styled runs.
    lines = [line for line in text.split(b"\n") if line]
    runs = [(rng.randint(0, 7), line) for line in lines] or [(0, b"")]
    return write_docz(runs, metadata={"generator": "repro", "kind": "benchmark"})


_ENCODERS = {
    "plain": _encode_plain,
    "html": _encode_html,
    "markdown": _encode_markdown,
    "csv": _encode_csv,
    "docz": _encode_docz,
}


def _swap_extension(path: str, extension: str) -> str:
    dot = path.rfind(".")
    base = path[:dot] if dot > path.rfind("/") else path
    return base + extension


def _ensure_parents(fs: VirtualFileSystem, path: str) -> None:
    parts = path.split("/")[:-1]
    prefix = ""
    for part in parts:
        prefix = f"{prefix}/{part}" if prefix else part
        if not fs.exists(prefix):
            fs.mkdir(prefix)
