"""Format protocol and registry."""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple


class DocumentFormat(abc.ABC):
    """One document format: detection plus text extraction.

    ``extract_text`` must be total: malformed input degrades to
    best-effort text, never an exception — a desktop indexer cannot
    afford to die on one corrupt file.
    """

    #: Short identifier, e.g. ``"html"``.
    name: str = "abstract"
    #: Filename extensions (lower-case, with dot) this format claims.
    extensions: Tuple[str, ...] = ()
    #: Leading byte signature, if the format has one.
    magic: Optional[bytes] = None

    @abc.abstractmethod
    def extract_text(self, content: bytes) -> bytes:
        """Plain text (ASCII/UTF-8 bytes) extracted from ``content``."""

    def matches_magic(self, content: bytes) -> bool:
        """Whether ``content`` starts with this format's signature."""
        return self.magic is not None and content.startswith(self.magic)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FormatRegistry:
    """Maps files to formats by extension first, then magic bytes.

    Extension lookup is the fast path (the common case on a desktop);
    magic sniffing covers misnamed files.  Unknown files fall back to
    the registry's default format (plain text), matching the indexing
    policy "index everything readable".
    """

    def __init__(self, formats: List[DocumentFormat], default: DocumentFormat):
        self._by_extension: Dict[str, DocumentFormat] = {}
        self._formats = list(formats)
        self.default = default
        for fmt in formats:
            for extension in fmt.extensions:
                if extension in self._by_extension:
                    raise ValueError(
                        f"extension {extension!r} claimed by both "
                        f"{self._by_extension[extension].name} and {fmt.name}"
                    )
                self._by_extension[extension.lower()] = fmt

    @property
    def formats(self) -> List[DocumentFormat]:
        """All registered formats (default included if registered)."""
        return list(self._formats)

    def by_name(self, name: str) -> DocumentFormat:
        """Look up a registered format by its name."""
        for fmt in self._formats:
            if fmt.name == name:
                return fmt
        if self.default.name == name:
            return self.default
        raise KeyError(name)

    def detect(self, path: str, content: bytes = b"") -> DocumentFormat:
        """The format responsible for ``path`` (extension, magic, default)."""
        dot = path.rfind(".")
        if dot != -1:
            fmt = self._by_extension.get(path[dot:].lower())
            if fmt is not None:
                return fmt
        if content:
            for fmt in self._formats:
                if fmt.matches_magic(content):
                    return fmt
        return self.default

    def extract_text(self, path: str, content: bytes) -> bytes:
        """Detect the format and extract plain text in one step."""
        return self.detect(path, content).extract_text(content)


def default_registry() -> FormatRegistry:
    """The standard registry: plain text, HTML, Markdown, CSV, DocZ."""
    from repro.formats.csvfmt import CsvFormat
    from repro.formats.docz import DoczFormat
    from repro.formats.html import HtmlFormat
    from repro.formats.markdown import MarkdownFormat
    from repro.formats.plain import PlainTextFormat

    plain = PlainTextFormat()
    return FormatRegistry(
        [HtmlFormat(), MarkdownFormat(), CsvFormat(), DoczFormat(), plain],
        default=plain,
    )
