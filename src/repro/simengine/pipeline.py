"""Simulated index-generation pipelines.

:class:`SimPipeline` builds and runs, on the DES kernel, the same
pipelines :mod:`repro.engine` runs on real threads:

* :meth:`run_sequential` — the naive sequential baseline (per-term
  inserts) or the en-bloc sequential variant;
* :meth:`stage_times` — the four isolated stage measurements of Table 1;
* :meth:`run` — a parallel run of Implementation 1/2/3 under an
  ``(x, y, z)`` thread configuration.

The structure mirrors the threaded engine deliberately: stage 1
pre-generates filenames (modelled as its measured constant time),
extractors own round-robin file vectors, term blocks either update the
index inline or flow through a bounded buffer to updater threads, and
Implementation 2 joins replicas after a barrier.
"""

from __future__ import annotations

from typing import List

from repro.engine.config import Implementation, ThreadConfig
from repro.platforms.profile import PlatformProfile
from repro.sim import (
    BUFFER_CLOSED,
    Acquire,
    Close,
    Delay,
    Get,
    Kernel,
    Put,
    Release,
    Use,
    WaitBarrier,
)
from repro.sim.resources import SimBarrier, SimBuffer, SimLock
from repro.simengine.batches import WorkBatch, make_batches
from repro.simengine.costmodel import CostModel
from repro.simengine.results import SimRunResult, SimStageTimes
from repro.simengine.workload import Workload

_MB = 1_000_000.0


class SimPipeline:
    """Runs simulated index generation for one platform and workload."""

    def __init__(
        self,
        platform: PlatformProfile,
        workload: Workload,
        batches_per_extractor: int = 200,
        buffer_capacity_files: int = 256,
        tracer=None,
    ) -> None:
        self.platform = platform
        self.workload = workload
        self.model = CostModel(platform, workload)
        self.batches_per_extractor = batches_per_extractor
        self.buffer_capacity_files = buffer_capacity_files
        # Optional repro.sim.trace.Tracer attached to every kernel this
        # pipeline creates (see examples/trace_timeline.py).
        self.tracer = tracer

    # -- kernel/resource scaffolding ----------------------------------------

    def _fresh_kernel(self):
        kernel = Kernel(tracer=self.tracer)
        cpu = kernel.resource("cpu", total_rate=float(self.platform.cores),
                              per_job_cap=1.0)
        disk = kernel.resource(
            "disk",
            total_rate=self.platform.aggregate_mbps * _MB,
            per_job_cap=self.platform.per_stream_mbps * _MB,
        )
        return kernel, cpu, disk

    # -- sequential and stage runs ------------------------------------------

    def run_sequential(self, naive: bool = True) -> SimRunResult:
        """The single-threaded baseline.

        ``naive=True`` reproduces the paper's original sequential
        implementation (per-occurrence inserts with the linear duplicate
        search); ``naive=False`` is the en-bloc sequential pipeline.
        """
        kernel, cpu, disk = self._fresh_kernel()
        model = self.model
        batches = make_batches(
            self.workload.files, model, self.batches_per_extractor * 4
        )

        stream_bw = self.platform.per_stream_mbps * _MB

        def sequential():
            yield Delay(self.platform.filename_gen_s)
            for batch in batches:
                yield Use(disk, batch.disk_bytes + batch.seek_s * stream_bw)
                yield Use(cpu, batch.read_cpu_s + batch.scan_cpu_s)
                if naive:
                    yield Use(cpu, batch.naive_cpu_s)
                else:
                    yield Use(cpu, batch.prep_cpu_s + batch.critical_cpu_s)

        kernel.spawn("sequential", sequential())
        total = kernel.run()
        return SimRunResult(
            platform_name=self.platform.name,
            implementation=None,
            config=None,
            total_s=total,
            filename_gen_s=self.platform.filename_gen_s,
            build_s=total - self.platform.filename_gen_s,
            disk_utilization=disk.utilization(total),
            cpu_utilization=cpu.utilization(total),
        )

    def stage_times(self) -> SimStageTimes:
        """Reproduce Table 1: each stage timed in an isolated run."""
        read_s = self._timed_stage(read=True, scan=False, update=False)
        read_extract_s = self._timed_stage(read=True, scan=True, update=False)
        update_s = self._timed_stage(read=False, scan=False, update=True)
        return SimStageTimes(
            filename_generation=self.platform.filename_gen_s,
            read_files=read_s,
            read_and_extract=read_extract_s,
            index_update=update_s,
        )

    def _timed_stage(self, read: bool, scan: bool, update: bool) -> float:
        kernel, cpu, disk = self._fresh_kernel()
        batches = make_batches(
            self.workload.files, self.model, self.batches_per_extractor * 4
        )

        stream_bw = self.platform.per_stream_mbps * _MB

        def stage():
            for batch in batches:
                if read:
                    yield Use(disk, batch.disk_bytes + batch.seek_s * stream_bw)
                    yield Use(cpu, batch.read_cpu_s)
                if scan:
                    yield Use(cpu, batch.scan_cpu_s)
                if update:
                    yield Use(cpu, batch.prep_cpu_s + batch.critical_cpu_s)

        kernel.spawn("stage", stage())
        return kernel.run()

    # -- the parallel run ------------------------------------------------------

    def run(
        self,
        implementation: Implementation,
        config: ThreadConfig,
        pipelined_stage1: bool = False,
        shards: int = 1,
    ) -> SimRunResult:
        """Simulate one parallel build under ``config``.

        With ``pipelined_stage1=True`` the filename generator runs
        *concurrently* with the extractors instead of pre-generating the
        list: its metadata traversal competes for the disk, and every
        filename handed over costs a pair of contended lock operations —
        the design the paper tried and found "highly inefficient".

        ``shards > 1`` stripes the shared index's lock over that many
        independent locks (only meaningful for Implementation 1): the
        serialized critical work divides across the stripes, modelling
        :class:`~repro.index.sharded.ShardedInvertedIndex`.
        """
        config.validate_for(implementation)
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        kernel, cpu, disk = self._fresh_kernel()
        model = self.model
        platform = self.platform

        # Round-robin distribution into private per-extractor vectors,
        # identical to the threaded engine's default strategy.
        x = config.extractors
        per_extractor = [self.workload.files[i::x] for i in range(x)]
        batch_lists: List[List[WorkBatch]] = [
            make_batches(files, model, self.batches_per_extractor)
            for files in per_extractor
        ]

        shared = implementation is Implementation.SHARED_LOCKED
        sharers = x + config.updaters if config.uses_buffer else x
        mult = platform.coherence_multiplier(sharers) if shared else 1.0
        stream_bw = platform.per_stream_mbps * _MB
        seek_mult = platform.seek_multiplier(x)

        index_locks = (
            [SimLock(f"index-shard-{k}") for k in range(shards)] if shared else []
        )
        buffer = None
        if config.uses_buffer:
            # Capacity is a file count in the real engine; convert it to
            # batches so backpressure kicks in at the same point.
            mean_batch_files = max(
                1.0, len(self.workload.files) / max(1, sum(map(len, batch_lists)))
            )
            capacity = max(2, round(self.buffer_capacity_files / mean_batch_files))
            buffer = SimBuffer("blocks", capacity=capacity)
        extractors_done = SimBarrier(x + 1, "extractors-done")
        writers_done = SimBarrier(
            (config.updaters if config.uses_buffer else x) + 1, "writers-done"
        )
        # Pairs accumulated per replica, for the join schedule.
        replica_pairs = [0] * config.replica_count
        phase_marks = {}

        def deliver_shared(batch: WorkBatch):
            """Insert a batch into the locked shared index.

            The handoff cost is charged inside the critical section: it
            models the futex wake-up and cache-line transfer that the
            *next* acquirer cannot overlap with anything.  With striping
            the batch's critical work divides over the shard locks.
            """
            yield Use(cpu, batch.prep_cpu_s)
            yield Use(cpu, batch.file_count * model.lock_op_s)
            serialized = (
                batch.critical_cpu_s * mult
                + batch.file_count * model.lock_handoff_s
            ) / shards
            for lock in index_locks:
                yield Acquire(lock)
                yield Use(cpu, serialized)
                yield Release(lock)

        # Pipelined stage 1: a contended lock pair per filename, both on
        # the producer and on the consumer side (the paper's measured
        # objection), with contention making each operation dearer.
        filename_lock = SimLock("filenames") if pipelined_stage1 else None
        # Producer and consumer each pay a lock pair per filename, and the
        # hot lock changes hands constantly — the same handoff cost the
        # shared index pays, serialized on both sides.
        contended_lock_op = 2.0 * model.lock_op_s + model.lock_handoff_s

        def filename_generator():
            # Metadata traversal competes with the extractors for the
            # disk instead of running before them.
            metadata_bytes = platform.filename_gen_s * stream_bw
            chunks = 50
            for _ in range(chunks):
                yield Use(disk, metadata_bytes / chunks)
                yield Acquire(filename_lock)
                yield Use(
                    cpu,
                    len(self.workload.files) / chunks * contended_lock_op,
                )
                yield Release(filename_lock)

        def extractor(i: int):
            if not pipelined_stage1:
                # Stage 1 pre-generates all filenames before extraction.
                yield Delay(platform.filename_gen_s)
            for batch in batch_lists[i]:
                if pipelined_stage1:
                    yield Acquire(filename_lock)
                    yield Use(cpu, batch.file_count * contended_lock_op)
                    yield Release(filename_lock)
                yield Use(disk, batch.disk_bytes + batch.seek_s * stream_bw * seek_mult)
                yield Use(cpu, batch.read_cpu_s + batch.scan_cpu_s)
                if buffer is not None:
                    yield Use(cpu, batch.file_count * model.buffer_op_s)
                    yield Put(buffer, batch)
                elif shared:
                    yield from deliver_shared(batch)
                else:
                    # Inline private replica (replica i belongs to me).
                    replica_pairs[i] += batch.unique_pairs
                    yield Use(cpu, batch.prep_cpu_s + batch.critical_cpu_s)
            yield WaitBarrier(extractors_done)
            if buffer is None:
                yield WaitBarrier(writers_done)

        def updater(w: int):
            while True:
                item = yield Get(buffer)
                if item is BUFFER_CLOSED:
                    break
                yield Use(cpu, item.file_count * model.buffer_op_s)
                if shared:
                    yield from deliver_shared(item)
                else:
                    replica_pairs[w] += item.unique_pairs
                    yield Use(cpu, item.prep_cpu_s + item.critical_cpu_s)
            yield WaitBarrier(writers_done)

        def closer():
            yield WaitBarrier(extractors_done)
            if buffer is not None:
                yield Close(buffer)

        def join_controller():
            yield WaitBarrier(writers_done)
            phase_marks["build_done"] = kernel.now
            if implementation is not Implementation.REPLICATED_JOINED:
                return
            if config.joiners == 1:
                # A single joiner folds every replica into a fresh index,
                # touching every pair once.
                yield Use(cpu, model.join_cpu(sum(replica_pairs)))
                return
            levels = _reduction_levels(replica_pairs)
            level_barrier = SimBarrier(config.joiners, "join-level")
            for j in range(config.joiners):
                kernel.spawn(f"joiner-{j}", joiner(j, levels, level_barrier))

        def joiner(j: int, levels: List[List[int]], barrier: SimBarrier):
            for level in levels:
                my_pairs = sum(level[j :: config.joiners])
                yield Use(cpu, model.join_cpu(my_pairs))
                yield WaitBarrier(barrier)

        if pipelined_stage1:
            kernel.spawn("filename-generator", filename_generator())
        for i in range(x):
            kernel.spawn(f"extractor-{i}", extractor(i))
        if buffer is not None:
            for w in range(config.updaters):
                kernel.spawn(f"updater-{w}", updater(w))
        kernel.spawn("closer", closer())
        kernel.spawn("join-controller", join_controller())

        total = kernel.run()
        build_done = phase_marks.get("build_done", total)
        return SimRunResult(
            platform_name=platform.name,
            implementation=implementation,
            config=config,
            total_s=total,
            filename_gen_s=platform.filename_gen_s,
            build_s=build_done - platform.filename_gen_s,
            join_s=total - build_done,
            lock_acquires=sum(lock.acquires for lock in index_locks),
            lock_contended=sum(
                lock.contended_acquires for lock in index_locks
            ),
            lock_wait_s=sum(lock.total_wait_time for lock in index_locks),
            buffer_peak=buffer.peak_occupancy if buffer else 0,
            disk_utilization=disk.utilization(total),
            cpu_utilization=cpu.utilization(total),
        )


def _reduction_levels(replica_pairs: List[int]) -> List[List[int]]:
    """Per-level merge costs (pairs moved) of the pairwise reduction tree.

    Merging replica b into a moves b's pairs; levels halve the replica
    count until one remains.
    """
    sizes = [p for p in replica_pairs]
    levels: List[List[int]] = []
    while len(sizes) > 1:
        moved = [sizes[i + 1] for i in range(0, len(sizes) - 1, 2)]
        merged = [sizes[i] + sizes[i + 1] for i in range(0, len(sizes) - 1, 2)]
        if len(sizes) % 2:
            merged.append(sizes[-1])
        levels.append(moved)
        sizes = merged
    return levels
