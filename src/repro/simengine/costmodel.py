"""Cost model: platform + workload -> per-action simulator demands.

Table 1's stage times are *totals over the whole benchmark*, so the
model converts them to per-byte / per-term / per-pair rates against the
workload's aggregates, then prices each simulated action:

* reading a file: seek delay + disk bytes + a CPU sliver
  (``read_cpu_fraction`` of the stream-time equivalent — syscalls and
  buffer copies that keep the thread off the disk);
* scanning: bytes x scan rate;
* en-bloc insert: a parallelizable preparation part (hashing,
  allocation) and a critical part that a shared-index design executes
  under the lock, inflated by the coherence multiplier;
* naive insert: occurrences x naive rate (sequential baseline only);
* join: pairs moved / join rate;
* lock and buffer operations: fixed micro-costs.
"""

from __future__ import annotations

from repro.platforms.profile import PlatformProfile
from repro.simengine.workload import FileWork, Workload

_MB = 1_000_000.0


class CostModel:
    """Prices pipeline actions for one (platform, workload) pair."""

    def __init__(self, platform: PlatformProfile, workload: Workload) -> None:
        self.platform = platform
        self.workload = workload
        total_bytes = max(1, workload.total_bytes)
        total_terms = max(1, workload.total_terms)
        total_pairs = max(1, workload.total_unique_pairs)

        self.scan_cpu_per_byte = platform.scan_cpu_s / total_bytes
        self.prep_per_pair = platform.update_prep_s / total_pairs
        self.critical_per_pair = platform.update_critical_s / total_pairs
        self.naive_per_term = platform.naive_update_s / total_terms
        # CPU seconds consumed per byte read (fraction of stream time).
        self.read_cpu_per_byte = platform.read_cpu_fraction / (
            platform.per_stream_mbps * _MB
        )
        self.seek_s = platform.seek_ms / 1_000.0
        self.lock_op_s = platform.lock_op_us / 1_000_000.0
        self.lock_handoff_s = platform.lock_handoff_us / 1_000_000.0
        self.buffer_op_s = platform.buffer_op_us / 1_000_000.0

    # -- per-file demands ---------------------------------------------------

    def read_bytes(self, file: FileWork) -> float:
        """Disk demand for reading the file, in bytes."""
        return float(file.size_bytes)

    def read_cpu(self, file: FileWork) -> float:
        """CPU seconds spent issuing/copying the file's reads."""
        return file.size_bytes * self.read_cpu_per_byte

    def scan_cpu(self, file: FileWork) -> float:
        """CPU seconds to tokenize and de-duplicate the file.

        The per-byte rate is calibrated on plain text; rich formats pay
        their measured multiplier on top (HTML ~2x, CSV ~2.5x, ...).
        """
        return file.size_bytes * self.scan_cpu_per_byte * file.scan_multiplier

    def insert_prep_cpu(self, file: FileWork) -> float:
        """CPU seconds of en-bloc insert work doable outside any lock."""
        return file.unique_terms * self.prep_per_pair

    def insert_critical_cpu(self, file: FileWork, sharers: int = 1) -> float:
        """CPU seconds of en-bloc insert work inside the shared lock,
        inflated by cache coherence when ``sharers`` threads share the
        index's cache lines."""
        return (
            file.unique_terms
            * self.critical_per_pair
            * self.platform.coherence_multiplier(sharers)
        )

    def insert_private_cpu(self, file: FileWork) -> float:
        """CPU seconds to insert into a thread-private replica (full
        work, no lock, no coherence)."""
        return file.unique_terms * (self.prep_per_pair + self.critical_per_pair)

    def naive_update_cpu(self, file: FileWork) -> float:
        """CPU seconds for the naive per-occurrence insert of the file."""
        return file.term_count * self.naive_per_term

    # -- aggregate demands -------------------------------------------------

    def join_cpu(self, pairs_moved: float) -> float:
        """CPU seconds to merge ``pairs_moved`` postings during a join."""
        return pairs_moved / (self.platform.join_mpairs_per_s * 1e6)

    def sequential_read_s(self) -> float:
        """Closed-form single-stream read time (sanity checks only)."""
        return (
            self.workload.total_bytes / (self.platform.per_stream_mbps * _MB)
            + len(self.workload.files) * self.seek_s
        )
