"""The simulated index generator.

Mirrors :mod:`repro.engine`'s pipeline (stage-1 prefetch, round-robin
extractors, optional buffered updaters, the three index designs, join)
as processes on the :mod:`repro.sim` kernel, with per-action costs from
a :class:`~repro.simengine.costmodel.CostModel` built from a
:class:`~repro.platforms.profile.PlatformProfile` and a
:class:`~repro.simengine.workload.Workload`.

This is what regenerates the paper's Tables 1-4: the real Python engine
proves the logic, the simulated engine provides the multicore timing
behaviour the GIL denies us.
"""

from repro.simengine.costmodel import CostModel
from repro.simengine.pipeline import SimPipeline
from repro.simengine.querysim import (
    QueryServiceResult,
    QuerySimulation,
    QueryWorkloadSpec,
)
from repro.simengine.results import SimRunResult, SimStageTimes
from repro.simengine.workload import FileWork, Workload, WorkloadSpec

__all__ = [
    "CostModel",
    "FileWork",
    "QueryServiceResult",
    "QuerySimulation",
    "QueryWorkloadSpec",
    "SimPipeline",
    "SimRunResult",
    "SimStageTimes",
    "Workload",
    "WorkloadSpec",
]
