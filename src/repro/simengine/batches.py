"""Batching of file work for the simulator.

Simulating all 51,000 files as individual events would cost hundreds of
thousands of kernel events per run; a full configuration sweep does
hundreds of runs.  Files are therefore aggregated into *batches* whose
demands are summed.  Per-item costs (lock pairs, buffer operations) are
still charged per file — a batch is purely an event-count optimization,
with lock/buffer *queueing* modelled at batch granularity.  The default
of ~200 batches per extractor keeps the granularity error well below
the paper's own run-to-run variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.simengine.costmodel import CostModel
from repro.simengine.workload import FileWork


@dataclass(frozen=True)
class WorkBatch:
    """Aggregated demands of a consecutive group of one extractor's files."""

    file_count: int
    seek_s: float
    disk_bytes: float
    read_cpu_s: float
    scan_cpu_s: float
    prep_cpu_s: float
    critical_cpu_s: float  # base, before the coherence multiplier
    naive_cpu_s: float
    unique_pairs: int


def make_batches(
    files: Sequence[FileWork], model: CostModel, target_batches: int
) -> List[WorkBatch]:
    """Group ``files`` (one extractor's work list, in order) into at most
    ``target_batches`` aggregated batches."""
    if not files:
        return []
    if target_batches < 1:
        raise ValueError("target_batches must be at least 1")
    per_batch = max(1, (len(files) + target_batches - 1) // target_batches)
    batches = []
    for start in range(0, len(files), per_batch):
        group = files[start : start + per_batch]
        batches.append(
            WorkBatch(
                file_count=len(group),
                seek_s=len(group) * model.seek_s,
                disk_bytes=sum(model.read_bytes(f) for f in group),
                read_cpu_s=sum(model.read_cpu(f) for f in group),
                scan_cpu_s=sum(model.scan_cpu(f) for f in group),
                prep_cpu_s=sum(model.insert_prep_cpu(f) for f in group),
                critical_cpu_s=sum(
                    f.unique_terms * model.critical_per_pair for f in group
                ),
                naive_cpu_s=sum(model.naive_update_cpu(f) for f in group),
                unique_pairs=sum(f.unique_terms for f in group),
            )
        )
    return batches
