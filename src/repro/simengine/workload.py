"""Workload models: the file statistics the simulated engine runs on.

A :class:`Workload` is a list of :class:`FileWork` records — per file:
size in bytes, term occurrences, distinct terms.  Two ways to get one:

* :meth:`Workload.from_corpus` scans a generated corpus exactly (used
  by tests, where corpora are tiny);
* :meth:`Workload.synthesize` builds the statistics directly from a
  :class:`WorkloadSpec` without generating any text — this is how the
  full 51,000-file / 869 MB paper benchmark is modelled in seconds.
  Term counts come from the mean bytes-per-term of the synthetic
  vocabulary; distinct-term counts from the exact Zipf expectation
  E[unique | n draws], interpolated over a logarithmic grid.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.corpus.profiles import PAPER_PROFILE, CorpusProfile
from repro.corpus.zipf import expected_unique_terms


@dataclass(frozen=True)
class FileWork:
    """One file's statistics as the cost model sees them.

    ``scan_multiplier`` scales the file's term-extraction CPU relative
    to plain text: rich formats (HTML, CSV, the DocZ container) cost
    more to scan, as the paper predicts ("for more complex formats,
    this part would take longer").  The multipliers used for synthetic
    mixed workloads come from the format-cost ablation's measurements.
    """

    path: str
    size_bytes: int
    term_count: int
    unique_terms: int
    scan_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.term_count < 0 or self.unique_terms < 0:
            raise ValueError("file statistics cannot be negative")
        if self.unique_terms > self.term_count:
            raise ValueError(
                f"{self.path}: unique terms ({self.unique_terms}) cannot "
                f"exceed term occurrences ({self.term_count})"
            )
        if self.scan_multiplier <= 0:
            raise ValueError("scan_multiplier must be positive")


#: Scan-cost multipliers per format, from the format-cost ablation
#: (benchmarks/test_ablation_formats.py on the real code paths).
FORMAT_SCAN_MULTIPLIERS: dict = {
    "plain": 1.0,
    "html": 2.0,
    "markdown": 2.0,
    "csv": 2.5,
    "docz": 1.1,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters for synthesizing a workload without generating text.

    ``format_mix`` (format name -> fraction) assigns each synthetic
    file a format and the corresponding scan-cost multiplier, modelling
    a mixed-format corpus; None (the default) is the paper's all-plain
    benchmark.
    """

    profile: CorpusProfile = PAPER_PROFILE
    bytes_per_term: float = 7.0
    unique_grid_points: int = 28
    format_mix: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.bytes_per_term <= 0:
            raise ValueError("bytes_per_term must be positive")
        if self.format_mix is not None:
            unknown = set(self.format_mix) - set(FORMAT_SCAN_MULTIPLIERS)
            if unknown:
                raise ValueError(f"unknown formats: {sorted(unknown)}")
            if sum(self.format_mix.values()) <= 0:
                raise ValueError("format_mix weights must be positive")


class Workload:
    """An immutable list of per-file statistics plus aggregates."""

    def __init__(self, files: Sequence[FileWork], name: str = "workload") -> None:
        if not files:
            raise ValueError("a workload needs at least one file")
        self.name = name
        self.files: List[FileWork] = list(files)
        self.total_bytes = sum(f.size_bytes for f in self.files)
        self.total_terms = sum(f.term_count for f in self.files)
        self.total_unique_pairs = sum(f.unique_terms for f in self.files)

    def __len__(self) -> int:
        return len(self.files)

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, files={len(self.files)}, "
            f"MB={self.total_bytes / 1e6:.1f}, pairs={self.total_unique_pairs})"
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_corpus(cls, corpus, tokenizer=None) -> "Workload":
        """Exact statistics by scanning a generated corpus's files."""
        from repro.text.tokenizer import Tokenizer

        tokenizer = tokenizer or Tokenizer()
        files = []
        for ref in corpus.fs.list_files():
            content = corpus.fs.read_file(ref.path)
            terms = tokenizer.tokenize(content)
            files.append(
                FileWork(
                    path=ref.path,
                    size_bytes=ref.size,
                    term_count=len(terms),
                    unique_terms=len(set(terms)),
                )
            )
        return cls(files, name=f"corpus-{corpus.profile.name}")

    @classmethod
    def synthesize(cls, spec: Optional[WorkloadSpec] = None) -> "Workload":
        """Statistics-only workload matching the spec's corpus profile.

        Mirrors the corpus generator's size model (log-normal small
        files plus equal-size large files) and converts sizes to term
        counts via mean term length and to distinct-term counts via the
        Zipf expectation.
        """
        spec = spec or WorkloadSpec()
        profile = spec.profile
        rng = random.Random(profile.seed + 1)
        unique_of = _UniqueInterpolator(
            profile.vocabulary_size, profile.zipf_exponent, spec.unique_grid_points
        )
        format_rng = random.Random(profile.seed + 7)
        format_names = sorted(spec.format_mix) if spec.format_mix else None
        format_weights = (
            [spec.format_mix[name] for name in format_names]
            if format_names
            else None
        )

        def pick_multiplier() -> float:
            if format_names is None:
                return 1.0
            name = format_rng.choices(format_names, format_weights)[0]
            return FORMAT_SCAN_MULTIPLIERS[name]

        files = []
        mean = profile.mean_small_size
        raw = [rng.lognormvariate(0.0, 0.8) for _ in range(profile.small_file_count)]
        scale = mean / (sum(raw) / len(raw))
        for i, r in enumerate(raw):
            size = max(16, int(r * scale))
            terms = max(1, int(size / spec.bytes_per_term))
            files.append(
                FileWork(
                    path=f"doc{i:06d}.txt",
                    size_bytes=size,
                    term_count=terms,
                    unique_terms=min(terms, unique_of(terms)),
                    scan_multiplier=pick_multiplier(),
                )
            )
        per_large = profile.large_file_bytes // profile.large_file_count
        for i in range(profile.large_file_count):
            terms = max(1, int(per_large / spec.bytes_per_term))
            files.append(
                FileWork(
                    path=f"big{i}.txt",
                    size_bytes=per_large,
                    term_count=terms,
                    unique_terms=min(terms, unique_of(terms)),
                    scan_multiplier=pick_multiplier(),
                )
            )
        return cls(files, name=f"synthetic-{profile.name}")


class _UniqueInterpolator:
    """log-linear interpolation of E[distinct terms | n Zipf draws].

    The exact expectation is an O(vocabulary) sum per evaluation, too
    slow for 51,000 files; instead it is evaluated on a logarithmic
    grid of draw counts once and interpolated in log space.
    """

    def __init__(self, vocabulary: int, s: float, points: int) -> None:
        top = 2 ** (points - 1)
        self._grid = [2**k for k in range(points)]
        self._values = [
            expected_unique_terms(n, vocabulary, s) for n in self._grid
        ]
        self._log_grid = [math.log(n) for n in self._grid]
        self._top = top
        self._vocabulary = vocabulary

    def __call__(self, n: int) -> int:
        if n <= 1:
            return 1
        if n >= self._top:
            return int(min(self._vocabulary, self._values[-1]))
        i = bisect.bisect_right(self._grid, n)
        x0, x1 = self._log_grid[i - 1], self._log_grid[i]
        y0, y1 = self._values[i - 1], self._values[i]
        t = (math.log(n) - x0) / (x1 - x0)
        return int(round(y0 + t * (y1 - y0)))
