"""Simulated query serving — the paper's future-work experiment.

"In the future we will analyze how to integrate the search query
functionality and parallelize it as well, for instance by using
multiple indices."  This module runs that analysis on the simulator:
a stream of boolean queries is served on a calibrated platform from
either

* ``joined`` — one joined index (what Implementation 2 pays the join
  for): each query is one lookup task;
* ``replicas-sequential`` — Implementation 3's k unjoined replicas,
  probed one after another by the query's worker;
* ``replicas-parallel`` — the k replicas probed by k concurrent
  lookup tasks per query, then merged (the paper's proposal).

Costs derive from the platform's calibrated index-touch rates: a hash
probe per (replica, term) plus a per-posting materialization cost, with
each replica holding ~1/k of every term's postings (round-robin blocks
spread every common term across replicas).  The study measures mean /
p95 latency and throughput as the number of concurrent query workers
grows — showing when intra-query parallelism helps (light load: latency
drops ~k-fold) and when it cannot (saturated cores: throughput is fixed
by total work).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.corpus.zipf import ZipfSampler
from repro.platforms.profile import PlatformProfile
from repro.sim import BUFFER_CLOSED, Close, Get, Kernel, Put, Use, WaitBarrier
from repro.sim.resources import SimBarrier, SimBuffer
from repro.simengine.workload import Workload

#: Serving modes.
MODES = ("joined", "replicas-sequential", "replicas-parallel")


@dataclass(frozen=True)
class QueryWorkloadSpec:
    """Shape of the simulated query stream."""

    query_count: int = 500
    mean_terms_per_query: float = 2.0
    vocabulary: int = 20_000
    zipf_exponent: float = 1.1
    seed: int = 11

    def __post_init__(self) -> None:
        if self.query_count < 1:
            raise ValueError("query_count must be positive")
        if self.mean_terms_per_query < 1.0:
            raise ValueError("queries need at least one term on average")


@dataclass(frozen=True)
class SimQuery:
    """One query: the postings volumes its terms touch."""

    postings_per_term: tuple


@dataclass
class QueryServiceResult:
    """Outcome of one query-serving simulation."""

    mode: str
    workers: int
    replicas: int
    total_s: float
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of virtual time."""
        return len(self.latencies) / self.total_s if self.total_s else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean per-query latency in milliseconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies) * 1000.0

    def p95_latency_ms(self) -> float:
        """95th-percentile latency in milliseconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))] * 1000.0


class QuerySimulation:
    """Simulates serving a query stream from the built index."""

    #: CPU seconds per hash probe of one (index, term) pair.
    HASH_PROBE_FRACTION = 2.0  # in units of one posting's touch cost
    #: Per-posting cost of merging partial result lists.
    MERGE_FRACTION = 0.25
    #: Per-shard dispatch overhead the scatter-gather broker pays, in
    #: hash-probe units (request marshalling + response handling).
    SCATTER_FRACTION = 1.0

    def __init__(
        self,
        platform: PlatformProfile,
        workload: Workload,
        spec: Optional[QueryWorkloadSpec] = None,
    ) -> None:
        self.platform = platform
        self.workload = workload
        self.spec = spec or QueryWorkloadSpec()
        # Touching one posting costs what the build paid to insert it.
        pairs = max(1, workload.total_unique_pairs)
        self._per_posting_s = platform.update_total_s / pairs
        self._queries = self._generate_queries()

    # -- query generation ---------------------------------------------------

    def _generate_queries(self) -> List[SimQuery]:
        """Queries whose term popularity follows the corpus Zipf."""
        spec = self.spec
        rng = random.Random(spec.seed)
        sampler = ZipfSampler(spec.vocabulary, spec.zipf_exponent,
                              seed=spec.seed + 1)
        # A term of rank r appears in df(r) files; approximate df by the
        # term's share of occurrences capped at the file count.
        total_files = len(self.workload.files)
        total_pairs = self.workload.total_unique_pairs

        def postings_of(rank: int) -> int:
            share = sampler.probability(rank)
            return max(1, min(total_files, int(share * total_pairs)))

        queries = []
        for _ in range(spec.query_count):
            n_terms = max(1, int(rng.expovariate(1.0 / spec.mean_terms_per_query))
                          or 1)
            n_terms = min(n_terms, 6)
            ranks = [sampler.sample() for _ in range(n_terms)]
            queries.append(
                SimQuery(tuple(postings_of(rank) for rank in ranks))
            )
        return queries

    # -- cost helpers -----------------------------------------------------

    def _probe_cpu(self, postings: int, replicas: int) -> float:
        """CPU to probe one index shard holding postings/replicas entries."""
        per_replica = max(1.0, postings / replicas)
        return (
            self.HASH_PROBE_FRACTION + per_replica
        ) * self._per_posting_s

    def _merge_cpu(self, postings: int) -> float:
        """CPU to merge one term's partial lists after a parallel probe."""
        return postings * self.MERGE_FRACTION * self._per_posting_s

    # -- the simulation ------------------------------------------------------

    def run(
        self, mode: str, workers: int, replicas: int = 4
    ) -> QueryServiceResult:
        """Serve the query stream and measure latency/throughput."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; one of {MODES}")
        if workers < 1 or replicas < 1:
            raise ValueError("workers and replicas must be positive")
        if mode == "joined":
            replicas = 1

        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=float(self.platform.cores),
                              per_job_cap=1.0)
        queue = SimBuffer("queries", capacity=len(self._queries) + 1)
        latencies: List[float] = []

        def feeder():
            for query in self._queries:
                yield Put(queue, query)
            yield Close(queue)

        def lookup_child(query: SimQuery, replica_id: int,
                         barrier: SimBarrier):
            for postings in query.postings_per_term:
                yield Use(cpu, self._probe_cpu(postings, replicas))
            yield WaitBarrier(barrier)

        def worker(worker_id: int):
            while True:
                query = yield Get(queue)
                if query is BUFFER_CLOSED:
                    return
                started = kernel.now
                if mode == "replicas-parallel":
                    barrier = SimBarrier(replicas + 1, "query-join")
                    for replica_id in range(replicas):
                        kernel.spawn(
                            f"lookup-{worker_id}-{replica_id}",
                            lookup_child(query, replica_id, barrier),
                        )
                    yield WaitBarrier(barrier)
                    for postings in query.postings_per_term:
                        yield Use(cpu, self._merge_cpu(postings))
                else:
                    # joined: one probe per term over the full postings;
                    # replicas-sequential: k probes per term, 1/k each.
                    probes = 1 if mode == "joined" else replicas
                    for postings in query.postings_per_term:
                        for _ in range(probes):
                            yield Use(cpu, self._probe_cpu(postings, replicas))
                latencies.append(kernel.now - started)

        kernel.spawn("feeder", feeder())
        for worker_id in range(workers):
            kernel.spawn(f"query-worker-{worker_id}", worker(worker_id))
        total = kernel.run()
        return QueryServiceResult(
            mode=mode,
            workers=workers,
            replicas=replicas,
            total_s=total,
            latencies=latencies,
        )

    def sweep(
        self, workers_list: List[int], replicas: int = 4
    ) -> Dict[str, List[QueryServiceResult]]:
        """All three modes across the given worker counts."""
        return {
            mode: [self.run(mode, workers, replicas)
                   for workers in workers_list]
            for mode in MODES
        }

    # -- document-partitioned serving (the scatter-gather broker) ----------

    def run_doc_sharded(self, workers: int, shards: int) -> QueryServiceResult:
        """Document-partitioned scatter-gather serving.

        The serving-side topology of ``repro.service.sharded``: every
        query is scattered to ``shards`` document partitions, each
        probing ~1/``shards`` of every term's postings concurrently,
        and the broker pays a per-shard dispatch cost on scatter plus
        a per-posting merge on gather.  Structurally this is
        ``replicas-parallel`` with the fan-out overhead made explicit
        — which is exactly why the broker's win shrinks as shard
        count outgrows the live query volume.  ``mode`` in the result
        is ``"doc-sharded"`` (not a member of the pinned :data:`MODES`
        tuple) and ``replicas`` records the shard count.
        """
        if workers < 1 or shards < 1:
            raise ValueError("workers and shards must be positive")

        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=float(self.platform.cores),
                              per_job_cap=1.0)
        queue = SimBuffer("queries", capacity=len(self._queries) + 1)
        latencies: List[float] = []
        scatter_cpu = (
            shards * self.SCATTER_FRACTION * self.HASH_PROBE_FRACTION
            * self._per_posting_s
        )

        def feeder():
            for query in self._queries:
                yield Put(queue, query)
            yield Close(queue)

        def shard_child(query: SimQuery, barrier: SimBarrier):
            for postings in query.postings_per_term:
                yield Use(cpu, self._probe_cpu(postings, shards))
            yield WaitBarrier(barrier)

        def worker(worker_id: int):
            while True:
                query = yield Get(queue)
                if query is BUFFER_CLOSED:
                    return
                started = kernel.now
                yield Use(cpu, scatter_cpu)
                barrier = SimBarrier(shards + 1, "gather")
                for shard_id in range(shards):
                    kernel.spawn(
                        f"shard-{worker_id}-{shard_id}",
                        shard_child(query, barrier),
                    )
                yield WaitBarrier(barrier)
                for postings in query.postings_per_term:
                    yield Use(cpu, self._merge_cpu(postings))
                latencies.append(kernel.now - started)

        kernel.spawn("feeder", feeder())
        for worker_id in range(workers):
            kernel.spawn(f"query-worker-{worker_id}", worker(worker_id))
        total = kernel.run()
        return QueryServiceResult(
            mode="doc-sharded",
            workers=workers,
            replicas=shards,
            total_s=total,
            latencies=latencies,
        )

    def sweep_doc_sharded(
        self, workers_list: List[int], shard_counts: List[int]
    ) -> Dict[int, List[QueryServiceResult]]:
        """``{shard count: per-worker-count results}`` for the broker."""
        return {
            shards: [self.run_doc_sharded(workers, shards)
                     for workers in workers_list]
            for shards in shard_counts
        }
