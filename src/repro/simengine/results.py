"""Results of simulated runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.config import Implementation, ThreadConfig


@dataclass(frozen=True)
class SimStageTimes:
    """Table 1's four columns, as produced by isolated simulated runs."""

    filename_generation: float
    read_files: float
    read_and_extract: float
    index_update: float


@dataclass
class SimRunResult:
    """One simulated end-to-end index generation run."""

    platform_name: str
    implementation: Optional[Implementation]
    config: Optional[ThreadConfig]
    total_s: float
    filename_gen_s: float = 0.0
    build_s: float = 0.0  # extraction + update phase (overlapped)
    join_s: float = 0.0
    # contention diagnostics
    lock_acquires: int = 0
    lock_contended: int = 0
    lock_wait_s: float = 0.0
    buffer_peak: int = 0
    disk_utilization: float = 0.0
    cpu_utilization: float = 0.0
    extra: dict = field(default_factory=dict)

    def speedup_over(self, sequential_s: float) -> float:
        """Speed-up relative to a sequential time."""
        if self.total_s <= 0:
            raise ValueError("total_s must be positive")
        return sequential_s / self.total_s

    def summary(self) -> str:
        """One line in the style of the paper's tables."""
        impl = self.implementation.paper_name if self.implementation else "Sequential"
        config = str(self.config) if self.config else "-"
        return (
            f"[{self.platform_name}] {impl} {config}: {self.total_s:.1f}s "
            f"(build {self.build_s:.1f}s, join {self.join_s:.1f}s, "
            f"lock wait {self.lock_wait_s:.1f}s)"
        )
