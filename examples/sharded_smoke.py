"""Sharded-serving smoke test: scatter-gather with a mid-load shard kill.

Builds an index over a synthetic corpus, partitions it across three
shards behind a :class:`~repro.service.sharded.ScatterGatherBroker`,
then:

1. runs a differential battery — every query's merged boolean answer
   must be byte-identical to the unsharded engine's;
2. kills shard 1 while reader threads are mid-stream and asserts every
   in-flight and subsequent query terminates with either a *degraded*
   result (correct over the live shards, ``shards_ok == 2/3``) or a
   typed error — never a hang;
3. re-runs the tail of the battery under ``partial="fail"`` and
   asserts the dead shard now surfaces as :class:`ShardDeadError`.

CI runs this as the ``sharded-smoke`` job and validates the Chrome
trace it writes with ``python -m repro.obs.validate``.

Run:  PYTHONPATH=src python examples/sharded_smoke.py [trace.json]
"""

from __future__ import annotations

import sys
import threading
import time

from repro import Search, obs
from repro.corpus import CorpusGenerator, TINY_PROFILE
from repro.service import (
    ServiceClosedError,
    ServiceOverloadedError,
    ShardDeadError,
)

SHARDS = 3
READERS = 4
QUERIES_EACH = 40


def battery(session) -> tuple:
    """Queries over terms actually present, covering every operator."""
    terms = sorted(session.index.terms())
    a, b = terms[0], terms[len(terms) // 2]
    return (
        a,
        f"{a} AND {b}",
        f"{a} OR nosuchterm",
        f"NOT {a}",
        f"{a} AND NOT {b}",
        f"{a[:2]}*",
    )


def main(trace_path: str = "sharded-trace.json") -> int:
    obs.enable()
    corpus = CorpusGenerator(TINY_PROFILE).generate()
    session = Search.build(corpus.fs)
    print(f"indexed {len(session)} files; {SHARDS} shards, "
          f"{READERS} readers x {QUERIES_EACH} queries, "
          f"shard 1 killed mid-load")

    # -- 1. differential battery on the healthy topology ------------------
    queries = battery(session)
    probe = queries[0]
    with session.serve_sharded(shards=SHARDS, workers=2,
                               max_inflight=256) as broker:
        for text in queries:
            sharded = broker.query(text)
            unsharded = session.query(text)
            assert sharded.paths == unsharded.paths, (
                f"differential mismatch on {text!r}"
            )
            assert sharded.shards_ok == sharded.shards_total == SHARDS
        print(f"differential battery: {len(queries)} queries identical "
              "to the unsharded engine")

        # -- 2. kill shard 1 under load; nothing may hang ----------------
        dead_universe = (
            broker.groups[1].replicas[0].service.snapshot.universe
        )
        results, errors = [], []
        barrier = threading.Barrier(READERS + 1)

        def reader() -> None:
            barrier.wait()
            for _ in range(QUERIES_EACH):
                try:
                    results.append(broker.query(probe))
                except (ShardDeadError, ServiceOverloadedError,
                        ServiceClosedError) as exc:
                    # typed ends only; anything else kills the thread
                    # and fails the accounting assertion below
                    errors.append(exc)
                time.sleep(0.001)

        def killer() -> None:
            barrier.wait()
            time.sleep(0.015)  # let the stream get going first
            broker.kill_shard(1)

        threads = [threading.Thread(target=reader)
                   for _ in range(READERS)]
        threads.append(threading.Thread(target=killer))
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 60.0
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not thread.is_alive(), "a query hung after the kill"

        assert len(results) + len(errors) == READERS * QUERIES_EACH
        full = [r for r in results if r.shards_ok == SHARDS]
        degraded = [r for r in results if r.shards_ok < SHARDS]
        expected_full = session.query(probe).paths
        expected_degraded = [path for path in expected_full
                             if path not in dead_universe]
        for result in full:
            assert result.paths == expected_full
        for result in degraded:
            assert result.degraded
            assert result.paths == expected_degraded
            assert (result.shards_ok, result.shards_total) == (2, 3)
        assert degraded, "the kill never surfaced in the results"
        stats = broker.stats()
        assert stats["broker.shards_ok"] == 2.0
        print(f"kill under load: {len(full)} full + {len(degraded)} "
              f"degraded results, {len(errors)} typed errors, 0 hangs; "
              f"shards_ok {stats['broker.shards_ok']:.0f}/"
              f"{stats['broker.shards_total']:.0f}")

    # -- 3. same dead shard under partial="fail": typed failure ----------
    with session.serve_sharded(shards=SHARDS, partial="fail",
                               workers=2, max_inflight=256) as strict:
        strict.kill_shard(1)
        try:
            strict.query(probe)
        except ShardDeadError as exc:
            print(f"partial=fail surfaces the dead shard: {exc}")
        else:
            raise AssertionError("partial='fail' answered degraded")
        assert strict.stats()["broker.failed"] == 1.0

    written = obs.write_chrome_trace(trace_path, obs.get_recorder().spans)
    print(f"trace -> {trace_path} ({written} bytes)")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
