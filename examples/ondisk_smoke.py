"""On-disk serving smoke test: 100 mixed queries answered off mmap.

Builds an index over a synthetic corpus, saves it as RIDX2 (with term
frequencies baked in), then stands up a
:class:`~repro.service.service.SearchService` over an mmap-backed
snapshot — postings are decoded block-by-block from the file, never
materialized into dicts.  One hundred mixed boolean/BM25 queries drawn
from the corpus's own vocabulary are served, and every answer is
differentially checked against the in-memory engine: boolean results
must be list-identical, BM25 results identical down to the float.

The run also asserts that the block-skipping machinery actually fired
(``blocks_skipped > 0``) — a smoke that passes by decoding everything
would not be testing the tentpole.

Run:  PYTHONPATH=src python examples/ondisk_smoke.py [index.ridx2]
"""

from __future__ import annotations

import sys
import tempfile

from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.engine import SequentialIndexer
from repro.index import MmapPostingsReader, save_index
from repro.query import BM25Ranker, FrequencyIndex, QueryEngine, search_bm25
from repro.service import SearchService
from repro.service.snapshot import IndexSnapshot

TOTAL_QUERIES = 100
TOPK = 10


def build_queries(index):
    """50 boolean + 50 ranked queries over the corpus's real vocabulary.

    Deterministic: drawn from the document-frequency extremes so the
    battery exercises long multi-block postings (frequent terms), seeks
    into them (AND with rare terms), complements, and wildcards.
    """
    by_df = sorted(index.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    frequent = [term for term, _ in by_df[:10]]
    rare = [term for term, _ in by_df[-10:]]
    boolean = []
    for i in range(10):
        boolean.append(frequent[i])
        boolean.append(rare[i])
        boolean.append(f"{frequent[i]} AND {rare[i]}")
        boolean.append(f"{frequent[i]} AND NOT {frequent[(i + 1) % 10]}")
        boolean.append(f"{rare[i]} OR {rare[(i + 1) % 10]}")
    ranked = []
    for i in range(10):
        ranked.append(frequent[i])
        ranked.append(rare[i])
        ranked.append(f"{frequent[i]} OR {rare[i]}")
        ranked.append(f"{frequent[i]} AND {frequent[(i + 1) % 10]}")
        ranked.append(f"{frequent[i][:3]}*")
    assert len(boolean) + len(ranked) == TOTAL_QUERIES
    return boolean, ranked


def main(path: str | None = None) -> int:
    if path is None:
        path = tempfile.mktemp(suffix=".ridx2")
    corpus = CorpusGenerator(PAPER_PROFILE.scaled(0.01, name="smoke")).generate()
    report = SequentialIndexer(corpus.fs, naive=False).build()
    frequencies = FrequencyIndex.from_fs(corpus.fs)
    written = save_index(
        report.index, path, format="ridx2", frequencies=frequencies
    )
    print(f"indexed {report.file_count} files, "
          f"{len(report.index)} terms -> {path} ({written} bytes, RIDX2)")

    memory = QueryEngine(
        report.index,
        universe=frozenset(ref.path for ref in corpus.fs.list_files()),
    )
    ranker = BM25Ranker(frequencies)
    boolean, ranked = build_queries(report.index)

    mismatches = []
    with MmapPostingsReader(path) as reader:
        snapshot = IndexSnapshot.from_ondisk(reader)
        with SearchService(snapshot, workers=2) as service:
            for query in boolean:
                got = service.query(query).paths
                expected = memory.search(query)
                if got != expected:
                    mismatches.append(("bool", query, got, expected))
            for query in ranked:
                hits = service.query(query, rank="bm25", topk=TOPK).hits
                expected = search_bm25(memory, ranker, query, topk=TOPK)
                if [(h.path, h.score) for h in hits] != [
                    (h.path, h.score) for h in expected
                ]:
                    mismatches.append(("bm25", query, hits, expected))
            stats = service.stats()
        blocks = reader.stats()

    print(f"served {TOTAL_QUERIES} queries ({len(boolean)} boolean, "
          f"{len(ranked)} bm25); service stats: {stats}")
    print(f"blocks: {blocks['ondisk.blocks_read']} read, "
          f"{blocks['ondisk.blocks_skipped']} skipped")

    if mismatches:
        mode, query, got, expected = mismatches[0]
        print(f"FAIL: {len(mismatches)} differential mismatches, e.g. "
              f"{mode} query {query!r}: mmap={got!r} memory={expected!r}",
              file=sys.stderr)
        return 1
    if blocks["ondisk.blocks_skipped"] <= 0:
        print("FAIL: no posting blocks were skipped — the DAAT seek "
              "path never engaged", file=sys.stderr)
        return 1
    print("OK: every mmap answer matched the in-memory engine, "
          "with block skipping engaged")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
