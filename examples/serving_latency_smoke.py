"""Serving-latency smoke: a ~5 second open-loop run against the frontend.

The CI-sized version of ``benchmarks/test_extension_serving_latency.py``:
builds a small index, stands up an :class:`AsyncSearchFrontend`, drives
it with seeded Poisson arrivals from a duplicate-heavy workload, and
checks the health signals rather than the performance claims —

* p50/p95/p99 are finite and positive (computed from the harness's
  ``loadgen.query`` obs spans, cross-checked against the driver);
* the shed rate is sane (within [0, 1], and zero at this easy load);
* single-flight actually engaged (coalescing counter > 0);
* every accepted query resolved — completed + shed + errors == issued.

Writes the digest as JSON (default ``serving-latency-smoke.json``) for
the CI artifact upload.

Run:  PYTHONPATH=src python examples/serving_latency_smoke.py [out.json]
"""

from __future__ import annotations

import json
import math
import sys
import time

from repro import obs
from repro.engine import SequentialIndexer
from repro.fsmodel import VirtualFileSystem
from repro.obs import recorder as obsrec
from repro.service import (
    AsyncSearchFrontend,
    IndexSnapshot,
    OpenLoopLoadGenerator,
    QuerySpec,
    SearchService,
)
from repro.service.loadgen import summarize_spans

FILES = 800
DURATION_S = 4.0
WARMUP_S = 0.5
SEED = 7
WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliett "
    "kilo lima mike november oscar papa quebec romeo sierra tango"
).split()


def _corpus() -> VirtualFileSystem:
    fs = VirtualFileSystem()
    for i in range(FILES):
        picks = [WORDS[(i + k * 7) % len(WORDS)] for k in range(6)]
        fs.write_file(f"doc{i:05d}.txt", (" ".join(picks) + f" doc{i}").encode())
    return fs


def main(out_path: str = "serving-latency-smoke.json") -> int:
    obs.enable()
    index = SequentialIndexer(_corpus(), naive=False).build().index
    snapshot = IndexSnapshot(index)

    # Duplicate-heavy workload: 3 hot queries (x10) + 12 distinct.
    hot = [QuerySpec(f"{WORDS[i]} AND {WORDS[i + 1]}") for i in range(3)]
    cold = [
        QuerySpec(f"{WORDS[i]} OR {WORDS[(i * 3 + 5) % len(WORDS)]}")
        for i in range(12)
    ]
    specs = hot * 10 + cold

    # Calibrate a comfortable offered load (~40% of solo capacity).
    started = time.perf_counter()
    for spec in specs:
        snapshot.search(spec.text)
    solo = (time.perf_counter() - started) / len(specs)
    qps = 0.4 / solo

    generator = OpenLoopLoadGenerator(
        specs, offered_qps=qps, duration_s=DURATION_S,
        warmup_s=WARMUP_S, seed=SEED,
    )
    service = SearchService(snapshot, workers=1, max_inflight=32)
    frontend = AsyncSearchFrontend(
        service, batch_window=0.002, workers=2, own_service=True
    )
    try:
        result = generator.run_frontend(frontend)
        stats = frontend.stats()
    finally:
        frontend.close()
    spans = summarize_spans(obsrec.get_recorder().spans, label="frontend")

    digest = {
        "smoke": "serving_latency",
        "offered_qps": round(qps, 1),
        "run": result.to_dict(),
        "frontend_stats": {k: round(v, 4) for k, v in stats.items()},
        "spans_crosscheck": {k: round(v, 4) for k, v in spans.items()},
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(digest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(digest, indent=2, sort_keys=True))

    failures = []
    for name in ("p50_ms", "p95_ms", "p99_ms"):
        value = result.to_dict()[name]
        if not (math.isfinite(value) and value > 0):
            failures.append(f"{name} not finite/positive: {value}")
    if not 0.0 <= result.shed_rate <= 1.0:
        failures.append(f"shed_rate out of range: {result.shed_rate}")
    if result.shed_rate > 0.05:
        failures.append(f"shedding at an easy load: {result.shed_rate}")
    if stats["frontend.coalesced"] <= 0:
        failures.append("single-flight never coalesced a duplicate")
    if result.completed + result.shed + result.errors != result.issued:
        failures.append("not every issued query resolved")
    if spans["count"] != result.measured:
        failures.append("span cross-check disagrees with the driver")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: p99={result.p99_ms:.2f} ms, "
          f"{int(stats['frontend.coalesced'])} coalesced, "
          f"shed_rate={result.shed_rate:.3f} -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
