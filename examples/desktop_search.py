"""Desktop search end-to-end on a real directory.

The scenario the paper's introduction motivates: a user's document
folder must be indexed and searched.  This example materializes a
synthetic document tree on disk, indexes it with all three of the
paper's implementations (verifying they produce identical indices),
persists the winner's index, and answers queries from the saved index —
the complete desktop-search life cycle on the real filesystem.

Run:  python examples/desktop_search.py
"""

import os
import shutil
import tempfile
import time

from repro import (
    CorpusGenerator,
    Implementation,
    IndexGenerator,
    PAPER_PROFILE,
    QueryEngine,
    ThreadConfig,
)
from repro.corpus import materialize
from repro.fsmodel import OsFileSystem
from repro.index import join_indices, load_multi_index, save_multi_index

RUNS = [
    (Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)),
    (Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)),
    (Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)),
]


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="desktop-search-")
    try:
        documents = os.path.join(workdir, "documents")
        index_dir = os.path.join(workdir, "index")

        # 1. A 0.4%-scale replica of the paper's benchmark (~200 files).
        corpus = CorpusGenerator(PAPER_PROFILE.scaled(0.004)).generate()
        count = materialize(corpus.fs, documents)
        print(f"materialized {count} documents under {documents}")

        # 2. Index with all three implementations; verify equivalence.
        fs = OsFileSystem(documents)
        generator = IndexGenerator(fs)
        reports = {}
        for implementation, config in RUNS:
            t0 = time.perf_counter()
            report = generator.build(implementation, config)
            elapsed = time.perf_counter() - t0
            reports[implementation] = report
            print(f"  {implementation.paper_name} {config}: "
                  f"{elapsed:.2f}s wall, {report.term_count} terms, "
                  f"{report.posting_count} postings")

        multi = reports[Implementation.REPLICATED_UNJOINED].index
        joined = reports[Implementation.REPLICATED_JOINED].index
        shared = reports[Implementation.SHARED_LOCKED].index
        assert join_indices(multi.replicas) == joined == shared
        print("all three implementations produced identical indices")

        # 3. Persist Implementation 3's replicas and reload them — the
        #    join is never paid, not even at save time.
        save_multi_index(multi, index_dir)
        loaded = load_multi_index(index_dir)
        print(f"saved and reloaded {len(loaded.replicas)} replicas")

        # 4. Query the saved index.
        universe = [ref.path for ref in fs.list_files()]
        engine = QueryEngine(loaded, universe=universe)
        vocabulary = corpus.vocabulary
        queries = [
            vocabulary[0],
            f"{vocabulary[0]} AND {vocabulary[5]}",
            f"({vocabulary[0]} OR {vocabulary[1]}) AND NOT {vocabulary[2]}",
        ]
        for query in queries:
            hits = engine.search(query, parallel=True)
            print(f"  search {query!r}: {len(hits)} file(s)")
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
