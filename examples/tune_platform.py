"""Auto-tune thread configurations on the simulated 32-core machine.

Reproduces the paper's methodology interactively: sweep the (x, y, z)
space for each implementation on the Intel Manycore Testing Lab machine
and inspect *why* the results differ — the shared index's lock
statistics make Implementation 1's collapse visible.

Run:  python examples/tune_platform.py
"""

from repro import Implementation, MANYCORE_32, SimPipeline, ThreadConfig, Workload
from repro.autotune import ConfigurationSpace, ExhaustiveSearch, HillClimbing


def main() -> None:
    workload = Workload.synthesize()  # the 51,000-file / 869 MB benchmark
    pipeline = SimPipeline(MANYCORE_32, workload)
    sequential = pipeline.run_sequential().total_s
    print(f"platform: {MANYCORE_32.description}")
    print(f"sequential baseline: {sequential:.1f}s\n")

    for implementation in Implementation:
        space = ConfigurationSpace(implementation, max_extractors=12,
                                   max_updaters=6)

        def objective(config: ThreadConfig) -> float:
            return pipeline.run(implementation, config).total_s

        # Hill climbing finds the optimum with ~5x fewer evaluations
        # than the exhaustive sweep the paper ran.
        result = HillClimbing(restarts=4, seed=0).run(space, objective)
        best = pipeline.run(implementation, result.best_config)
        print(f"{implementation.paper_name}: best {result.best_config} "
              f"-> {best.total_s:.1f}s "
              f"(speed-up {sequential / best.total_s:.2f}, "
              f"{result.evaluations} evaluations)")
        if best.lock_acquires:
            print(f"    shared-index lock: {best.lock_contended} contended "
                  f"acquires, {best.lock_wait_s:.1f}s total wait "
                  f"-> that is where the time goes")
        if best.join_s:
            print(f"    join phase: {best.join_s:.1f}s after the build")
        print(f"    disk {best.disk_utilization:.0%} busy, "
              f"cpu {best.cpu_utilization:.0%} busy")

    # For reference: what the exhaustive sweep (the paper's method) says
    # for Implementation 3, and how close hill climbing got.
    space = ConfigurationSpace(Implementation.REPLICATED_UNJOINED,
                               max_extractors=12, max_updaters=6)
    exhaustive = ExhaustiveSearch().run(
        space,
        lambda config: pipeline.run(
            Implementation.REPLICATED_UNJOINED, config
        ).total_s,
    )
    print(f"\nexhaustive optimum for Implementation 3: "
          f"{exhaustive.best_config} -> {exhaustive.best_value:.1f}s "
          f"({exhaustive.evaluations} evaluations)")


if __name__ == "__main__":
    main()
