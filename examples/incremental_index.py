"""Incremental index maintenance: tracking a changing document folder.

A deployed desktop search cannot re-index 51,000 files every time one
document changes.  This example simulates a user working on their
files — creating, editing, deleting — with an
:class:`~repro.index.incremental.IncrementalIndexer` keeping the index
current, and verifies after every step that the incrementally
maintained index is identical to a from-scratch rebuild.

Run:  python examples/incremental_index.py
"""

from repro import CorpusGenerator, SequentialIndexer, TINY_PROFILE
from repro.index.incremental import IncrementalIndexer


def verify_against_rebuild(indexer, fs) -> None:
    rebuilt = SequentialIndexer(fs, naive=False).build()
    assert indexer.index.index == rebuilt.index, "incremental != rebuild"


def main() -> None:
    corpus = CorpusGenerator(TINY_PROFILE).generate()
    fs = corpus.fs
    indexer = IncrementalIndexer(fs)

    report = indexer.refresh()
    print(f"initial build: {len(report.added)} documents, "
          f"{len(indexer.index.index)} terms")
    verify_against_rebuild(indexer, fs)

    # The user saves a new document...
    fs.write_file("notes.txt", b"meeting notes about the quarterly report")
    report = indexer.refresh()
    print(f"created notes.txt -> refresh touched {report.total} document(s)")
    assert indexer.index.lookup("quarterly") == ["notes.txt"]
    verify_against_rebuild(indexer, fs)

    # ... edits it ...
    fs.replace_file("notes.txt", b"meeting notes about the annual budget")
    report = indexer.refresh()
    print(f"edited notes.txt  -> refresh touched {report.total} document(s)")
    assert indexer.index.lookup("quarterly") == []
    assert indexer.index.lookup("budget") == ["notes.txt"]
    verify_against_rebuild(indexer, fs)

    # ... and deletes an old one.
    victim = sorted(ref.path for ref in fs.list_files())[0]
    fs.remove_file(victim)
    report = indexer.refresh()
    print(f"deleted {victim} -> refresh touched {report.total} document(s)")
    verify_against_rebuild(indexer, fs)

    # A refresh with no changes is free.
    report = indexer.refresh()
    print(f"idle refresh      -> touched {report.total} document(s)")
    print("incremental index matched a full rebuild after every step")


if __name__ == "__main__":
    main()
