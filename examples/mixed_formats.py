"""Mixed-format desktop search: HTML, Markdown, CSV and DocZ documents.

The paper indexed plain text and named "more file formats" as future
work; this example runs that extension end to end.  A corpus containing
five document formats is generated, indexed with format-aware
extraction, and searched with the extended query features: wildcards
and tf-idf ranking.

Run:  python examples/mixed_formats.py
"""

from repro import Implementation, IndexGenerator, PAPER_PROFILE, ThreadConfig
from repro.formats import default_registry
from repro.formats.mixed import generate_mixed_corpus
from repro.query import FrequencyIndex, QueryEngine, TfIdfRanker, search_ranked


def main() -> None:
    # 1. A 0.4%-scale corpus: ~200 files across five formats.
    mixed = generate_mixed_corpus(PAPER_PROFILE.scaled(0.004))
    breakdown = ", ".join(
        f"{count} {name}" for name, count in sorted(mixed.format_counts.items())
    )
    print(f"corpus: {breakdown}")

    # 2. Index with format-aware extraction: HTML tags, Markdown markup
    #    and the DocZ binary container are stripped before tokenizing.
    registry = default_registry()
    report = IndexGenerator(mixed.fs, registry=registry).build(
        Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
    )
    print(report.summary())

    # Proof the registry mattered: markup never reaches the index.
    for markup_term in ("doctype", "href", "docz"):
        assert markup_term not in report.index, markup_term
    print("no markup terms leaked into the index")

    # 3. Wildcard search: a prefix expands against the term dictionary.
    universe = [ref.path for ref in mixed.fs.list_files()]
    engine = QueryEngine(report.index, universe=universe)
    sample = sorted(
        term for term in report.index.terms() if len(term) > 6
    )[0]
    prefix = sample[:4]
    hits = engine.search(f"{prefix}*")
    print(f"wildcard {prefix!r}*: {len(hits)} file(s) across formats, e.g. "
          + ", ".join(sorted({h.rsplit('.', 1)[-1] for h in hits[:20]})))

    # 4. Ranked search: tf-idf ordering over the boolean matches.
    frequencies = FrequencyIndex.from_fs(mixed.fs, registry=registry)
    ranked = search_ranked(engine, TfIdfRanker(frequencies), f"{prefix}*")
    print("top ranked hits:")
    for hit in ranked[:3]:
        print(f"  {hit.score:7.3f}  {hit.path}")


if __name__ == "__main__":
    main()
