"""Serving smoke test: 200 concurrent queries across two live refreshes.

Builds an index over a synthetic corpus, stands up a
:class:`~repro.service.service.SearchService`, then hammers it from
four reader threads while a fifth thread adds files and swaps refreshed
snapshots in.  The oracle is snapshot isolation itself: every result
must exactly match the generation it claims to come from — a query that
mixed two generations (a torn read across the swap) fails the run.

Writes a Chrome trace of the whole exercise; CI validates it with
``python -m repro.obs.validate``.

Run:  PYTHONPATH=src python examples/serving_smoke.py [trace.json]
"""

from __future__ import annotations

import sys
import threading
import time

from repro import Search, obs
from repro.corpus import CorpusGenerator, TINY_PROFILE

READERS = 4
QUERIES_EACH = 50
MARKER = "xylophonesmoke"

#: what a query for MARKER must return at each generation — exactly.
EXPECTED = {
    0: [],
    1: ["smoke-1.txt"],
    2: ["smoke-1.txt", "smoke-2.txt"],
}


def main(trace_path: str = "serving-trace.json") -> int:
    obs.enable()
    corpus = CorpusGenerator(TINY_PROFILE).generate()
    session = Search.build(corpus.fs)
    print(f"indexed {len(session)} files; serving with {READERS} readers "
          f"x {QUERIES_EACH} queries during 2 refresh swaps")

    results, errors = [], []
    barrier = threading.Barrier(READERS + 1)

    with session.serve(workers=4, max_inflight=256) as service:

        def reader() -> None:
            barrier.wait()
            for _ in range(QUERIES_EACH):
                try:
                    results.append(service.query(MARKER))
                except BaseException as exc:
                    errors.append(exc)
                # pace the stream so it straddles both swaps instead of
                # finishing before the first refresh lands
                time.sleep(0.002)

        def refresher() -> None:
            barrier.wait()
            for round_no in (1, 2):
                corpus.fs.write_file(
                    f"smoke-{round_no}.txt",
                    f"{MARKER} appears in round {round_no}".encode(),
                )
                outcome = service.refresh()
                print(f"  swap: {outcome}")

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        threads.append(threading.Thread(target=refresher))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()

    torn = [r for r in results if r.paths != EXPECTED[r.generation]]
    by_generation = {
        g: sum(1 for r in results if r.generation == g) for g in EXPECTED
    }
    written = obs.write_chrome_trace(trace_path, obs.get_recorder().spans)
    print(f"served {len(results)} queries across generations "
          f"{by_generation}; trace -> {trace_path} ({written} bytes)")
    print(f"final stats: {stats}")

    if errors:
        print(f"FAIL: {len(errors)} queries errored: {errors[:3]}",
              file=sys.stderr)
        return 1
    if torn:
        print(f"FAIL: {len(torn)} torn reads, e.g. generation "
              f"{torn[0].generation} answered {torn[0].paths}",
              file=sys.stderr)
        return 1
    if len(results) != READERS * QUERIES_EACH:
        print(f"FAIL: expected {READERS * QUERIES_EACH} results, "
              f"got {len(results)}", file=sys.stderr)
        return 1
    print("OK: every result matched exactly one generation")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
