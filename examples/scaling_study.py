"""Core-count scaling study with ASCII charts.

Holds the 32-core machine's disk constant, sweeps hypothetical 2..64
core variants, auto-tunes every design at every point, and plots the
result: the paper's "the disk is the ceiling" story as a curve.

Run:  python examples/scaling_study.py
"""

from repro import Implementation, MANYCORE_32, SimPipeline, Workload
from repro.autotune import ConfigurationSpace, HillClimbing
from repro.experiments.textplot import bar_chart, line_chart
from repro.platforms import hypothetical

CORE_COUNTS = (2, 4, 8, 16, 32, 64)


def main() -> None:
    workload = Workload.synthesize()
    series = {impl.paper_name: [] for impl in Implementation}
    for cores in CORE_COUNTS:
        platform = hypothetical(MANYCORE_32, cores=cores)
        pipeline = SimPipeline(platform, workload, batches_per_extractor=60)
        sequential = pipeline.run_sequential().total_s
        for implementation in Implementation:
            space = ConfigurationSpace(implementation, max_extractors=10,
                                       max_updaters=4)
            result = HillClimbing(restarts=3, seed=0).run(
                space,
                lambda config, impl=implementation: pipeline.run(
                    impl, config
                ).total_s,
            )
            speedup = sequential / result.best_value
            series[implementation.paper_name].append((cores, speedup))
        print(f"cores={cores:>3}: " + "  ".join(
            f"{name.split()[-1]}: x{points[-1][1]:.2f}"
            for name, points in series.items()
        ))

    print()
    print(line_chart(
        series,
        width=58,
        height=14,
        title="Best speed-up vs core count (manycore-32 disk held fixed)",
        x_label="cores",
        y_label="speed-up",
    ))

    print()
    final = [(name, points[-1][1]) for name, points in series.items()]
    print(bar_chart(final, width=40,
                    title="At 64 cores (disk-bound plateau):", unit="x"))


if __name__ == "__main__":
    main()
