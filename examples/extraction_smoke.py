"""Extraction-pipeline smoke test: splitting, counters, byte parity.

Builds a mixed corpus — small notes, a source file, a TSV table, and
one huge text file — then:

* builds with huge-file splitting enabled on the threaded and the
  process backends and checks the ``extract.files_split`` counter
  proves the big file really was chunked;
* diffs each split build against an unsplit sequential build — the
  canonical index bytes must be identical, because chunking may only
  change *who* extracts the bytes, never what lands in the index;
* runs the named ``code`` extractor end to end through the ``Search``
  facade and queries a term that only camelCase splitting can produce.

Run:  PYTHONPATH=src python examples/extraction_smoke.py
"""

from __future__ import annotations

import sys

from repro import Search
from repro.engine import (
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    SequentialIndexer,
    ThreadConfig,
)
from repro.fsmodel import VirtualFileSystem
from repro.index.binfmt import dump_index_bytes
from repro.index.merge import join_indices
from repro.obs import Recorder
from repro.obs import recorder as obsrec

SPLIT_THRESHOLD = 16 * 1024


def build_corpus() -> VirtualFileSystem:
    fs = VirtualFileSystem()
    for i in range(8):
        fs.write_file(f"note-{i}.txt", b"cat dog ferret gecko heron " * 30)
    fs.write_file(
        "tool.py",
        b"def parseHTTPHeader(raw):\n    return splitHeaderValue(raw)\n",
    )
    fs.write_file("table.tsv", b"1\talpha beta\tgamma\n2\tdelta\tepsilon\n")
    # One file holding most of the corpus bytes: the split target.
    fs.write_file("archive.txt", b"alpha beta gamma delta epsilon " * 6_000)
    return fs


def flat_bytes(report) -> bytes:
    index = report.index
    if hasattr(index, "replicas"):
        index = join_indices(index.replicas)
    return dump_index_bytes(index)


def main() -> int:
    obsrec.set_recorder(Recorder(enabled=False))  # fresh metrics registry
    fs = build_corpus()
    baseline = SequentialIndexer(fs, naive=False).build()
    want = flat_bytes(baseline)
    print(f"corpus: {baseline.file_count} files, "
          f"{fs.file_size('archive.txt')} bytes in the huge file")

    for label, build in (
        ("threaded", lambda: ReplicatedJoinedIndexer(
            fs, split_threshold=SPLIT_THRESHOLD
        ).build(ThreadConfig(2, 0, 1))),
        ("process", lambda: ProcessReplicatedIndexer(
            fs, split_threshold=SPLIT_THRESHOLD, oversubscribe=True
        ).build(ThreadConfig(2, 0, 1, backend="process"))),
    ):
        obsrec.set_recorder(Recorder(enabled=False))
        report = build()
        split_count = obsrec.metrics().snapshot().get("extract.files_split")
        print(f"  {label}: indexed {report.file_count} files, "
              f"files_split counter = {split_count}")
        if split_count != 1.0:
            print(f"FAIL: {label} build split {split_count} files, "
                  "expected exactly the huge one", file=sys.stderr)
            return 1
        if flat_bytes(report) != want:
            print(f"FAIL: {label} split build bytes differ from the "
                  "unsplit sequential build", file=sys.stderr)
            return 1
    print("OK: split builds byte-identical to the unsplit build")

    session = Search.build(fs, extractor="code")
    hits = session.query("parsehttpheader").paths
    if hits != ["tool.py"]:
        print(f"FAIL: code extractor query answered {hits}", file=sys.stderr)
        return 1
    print("OK: named 'code' extractor resolves camelCase identifiers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
