"""Visualize where a simulated build spends its time.

Attaches a tracer to the simulator and renders ASCII timelines of the
same configuration under Implementation 1 (shared, locked) and
Implementation 3 (replicated, unjoined) on the 32-core machine — the
lock convoy that destroys Implementation 1 is directly visible as the
wall of ``L`` glyphs.

Run:  python examples/trace_timeline.py
"""

from repro import Implementation, MANYCORE_32, SimPipeline, ThreadConfig, Workload
from repro.corpus import PAPER_PROFILE
from repro.simengine import WorkloadSpec
from repro.sim.trace import Tracer, render_timeline

CONFIG = ThreadConfig(4, 2, 0)


def traced_run(implementation: Implementation) -> Tracer:
    # A scaled workload with few batches keeps the timeline readable.
    workload = Workload.synthesize(
        WorkloadSpec(profile=PAPER_PROFILE.scaled(0.2, name="trace"))
    )
    tracer = Tracer()
    pipeline = SimPipeline(MANYCORE_32, workload, batches_per_extractor=12,
                           tracer=tracer)
    result = pipeline.run(implementation, CONFIG)
    print(f"{implementation.paper_name} {CONFIG}: {result.total_s:.1f}s "
          f"(lock wait {result.lock_wait_s:.1f}s, "
          f"disk {result.disk_utilization:.0%} busy)")
    return tracer


def main() -> None:
    for implementation in (
        Implementation.SHARED_LOCKED,
        Implementation.REPLICATED_UNJOINED,
    ):
        tracer = traced_run(implementation)
        workers = [
            name for name in tracer.processes()
            if name.startswith(("extractor", "updater"))
        ]
        print(render_timeline(tracer, width=64, processes=workers))
        print()
    print("Legend: # = compute/disk service, L = lock acquire (waiting "
          "or holding), < > = buffer traffic, B = barrier, . = sleep")


if __name__ == "__main__":
    main()
