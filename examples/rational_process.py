"""The paper's six-step rational design process, executed end to end.

Section 5 of Meder & Tichy distils the case study into a process:

1. use benchmarks and measurements to find the parallelization potential;
2. beware of bottlenecks (I/O, shared data structures with locks);
3. develop alternative parallel designs;
4. explore alternatives with back-of-the-envelope analysis;
5. experiment where analysis is not enough;
6. use an auto-tuner to speed up exploring the design space.

This example runs each step on the simulated 8-core machine, printing
what the paper's authors would have seen.

Run:  python examples/rational_process.py
"""

from repro import Implementation, OCTO_CORE, SimPipeline, ThreadConfig, Workload
from repro.autotune import ConfigurationSpace, HillClimbing

MB = 1_000_000


def main() -> None:
    workload = Workload.synthesize()
    pipeline = SimPipeline(OCTO_CORE, workload)
    platform = OCTO_CORE
    print(f"platform: {platform.description}\n")

    # Step 1 — measure the stages (the paper's Table 1).
    print("step 1: measure the components")
    times = pipeline.stage_times()
    sequential = pipeline.run_sequential().total_s
    print(f"  filename generation {times.filename_generation:.0f}s, "
          f"read {times.read_files:.0f}s, "
          f"read+extract {times.read_and_extract:.0f}s, "
          f"update {times.index_update:.0f}s; "
          f"naive sequential total {sequential:.0f}s")
    share = times.filename_generation / sequential
    print(f"  -> stage 1 is {share:.0%} of the runtime: not worth "
          f"parallelizing (the paper's first decision)\n")

    # Step 2 — bottleneck analysis.
    print("step 2: beware of bottlenecks")
    single_stream = platform.per_stream_mbps
    aggregate = platform.aggregate_mbps
    print(f"  disk: one stream {single_stream:.1f} MB/s of an "
          f"{aggregate:.1f} MB/s ceiling -> parallel reads buy only "
          f"{aggregate / single_stream:.2f}x")
    floor = workload.total_bytes / (aggregate * MB)
    print(f"  -> no configuration can beat ~{floor:.0f}s of pure disk "
          f"time; speed-up is capped near "
          f"{sequential / (floor + platform.filename_gen_s):.1f}x\n")

    # Step 3 — alternative designs.
    print("step 3: develop alternatives (the three implementations)")
    candidates = {
        Implementation.SHARED_LOCKED: "one shared index under a lock",
        Implementation.REPLICATED_JOINED: "private replicas, joined at the end",
        Implementation.REPLICATED_UNJOINED: "private replicas, never joined",
    }
    for implementation, description in candidates.items():
        print(f"  {implementation.paper_name}: {description}")
    print()

    # Step 4 — back-of-the-envelope.
    print("step 4: back-of-the-envelope analysis")
    critical = platform.update_critical_s
    handoff = len(workload.files) * platform.lock_handoff_us / 1e6
    print(f"  Impl 1's serialized work: {critical:.1f}s of critical "
          f"sections + {handoff:.1f}s of lock handoffs "
          f"(x coherence as writers grow)")
    print(f"  vs the {floor:.0f}s disk floor: the lock is the binding "
          f"constraint -> expect Implementation 1 to lose here\n")

    # Step 5 — experiment.
    print("step 5: experiment (one configuration, all three designs)")
    config = ThreadConfig(6, 2, 0)
    for implementation in (Implementation.SHARED_LOCKED,
                           Implementation.REPLICATED_UNJOINED):
        result = pipeline.run(implementation, config)
        note = (f", {result.lock_wait_s:.0f}s lock wait"
                if result.lock_acquires else "")
        print(f"  {implementation.paper_name} {config}: "
              f"{result.total_s:.1f}s{note}")
    joined = pipeline.run(Implementation.REPLICATED_JOINED,
                          ThreadConfig(6, 2, 1))
    print(f"  {Implementation.REPLICATED_JOINED.paper_name} (6, 2, 1): "
          f"{joined.total_s:.1f}s (join adds {joined.join_s:.1f}s)\n")

    # Step 6 — auto-tune.
    print("step 6: auto-tune the thread allocation")
    for implementation in Implementation:
        space = ConfigurationSpace(implementation, max_extractors=10,
                                   max_updaters=5)
        best = HillClimbing(restarts=3, seed=0).run(
            space,
            lambda cfg, impl=implementation: pipeline.run(impl, cfg).total_s,
        )
        print(f"  {implementation.paper_name}: best {best.best_config} -> "
              f"{best.best_value:.1f}s (x{sequential / best.best_value:.2f}) "
              f"in {best.evaluations} evaluations")
    print("\nconclusion: replicate, don't lock — and never join what "
          "the query engine can search in parallel.")


if __name__ == "__main__":
    main()
