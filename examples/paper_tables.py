"""Regenerate the paper's Tables 1-4, side by side with its numbers.

This is the complete reproduction in one script: the sequential stage
times (Table 1) and the best-configuration comparisons on the 4-, 8-
and 32-core machines (Tables 2-4), each rendered next to the values
Meder & Tichy report.

Run:  python examples/paper_tables.py          (full sweep, ~3 minutes)
      python examples/paper_tables.py --fast   (narrow sweep, ~30s)
"""

import sys

from repro import Workload
from repro.experiments import (
    render_best_config_table,
    render_table1,
    run_best_config_table,
    run_table1,
)
from repro.platforms import ALL_PLATFORMS


def main() -> None:
    fast = "--fast" in sys.argv
    sweep = (
        dict(max_extractors=8, max_updaters=4, batches_per_extractor=60)
        if fast
        else {}
    )
    workload = Workload.synthesize()
    print(f"workload: {len(workload.files)} files, "
          f"{workload.total_bytes / 1e6:.0f} MB, "
          f"{workload.total_unique_pairs / 1e6:.1f}M (term, file) pairs\n")

    print(render_table1(run_table1(workload)))
    for platform in ALL_PLATFORMS:
        print()
        table = run_best_config_table(platform, workload, **sweep)
        print(render_best_config_table(table))


if __name__ == "__main__":
    main()
