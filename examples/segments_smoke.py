"""Segmented-index smoke test: churn, background compaction, byte parity.

Builds a session over a synthetic corpus, then runs mutate/refresh
rounds (adds, edits, deletes) while a :class:`BackgroundCompactor`
folds sealed segments together on the process pool.  The oracle is
merge equivalence: after a final forced compaction the manifest's
canonical RIDX2 bytes must be *identical* to a from-scratch rebuild of
the filesystem — any divergence in the segment/tombstone bookkeeping
shows up as a byte diff.

Run:  PYTHONPATH=src python examples/segments_smoke.py
"""

from __future__ import annotations

import sys
import time

from repro import Search
from repro.corpus import CorpusGenerator, TINY_PROFILE
from repro.engine import SequentialIndexer
from repro.index.binfmt import dump_index_ridx2
from repro.index.segments import CompactionPolicy

ROUNDS = 6
MARKER = "glockenspielsmoke"


def main() -> int:
    corpus = CorpusGenerator(TINY_PROFILE).generate()
    session = Search.build(corpus.fs)
    print(f"indexed {len(session)} files; running {ROUNDS} churn rounds "
          f"with background compaction on the process pool")

    policy = CompactionPolicy(fanin=2, max_segments=3)
    compactor = session.start_compactor(0.02, policy=policy, workers=2)
    try:
        for round_no in range(1, ROUNDS + 1):
            corpus.fs.write_file(
                f"smoke-{round_no}.txt",
                f"{MARKER} round {round_no}".encode(),
            )
            if round_no > 2:
                corpus.fs.replace_file(
                    f"smoke-{round_no - 2}.txt",
                    f"{MARKER} rewritten in {round_no}".encode(),
                )
            if round_no > 3:
                corpus.fs.remove_file(f"smoke-{round_no - 3}.txt")
            change = session.refresh()
            manifest = session.manifest
            print(f"  round {round_no}: {change} -> "
                  f"{manifest.segment_count} segment(s), "
                  f"{len(manifest.tombstones)} tombstone(s)")
            time.sleep(0.04)  # let the compactor take a tick
    finally:
        compactor.stop()

    session.compact(workers=2, force=True)
    manifest = session.manifest
    print(f"final: {manifest.segment_count} segment(s), "
          f"generation {manifest.generation}")

    hits = session.query(MARKER)
    live = sorted(p for p in manifest.live_paths() if p.startswith("smoke-"))
    if sorted(hits) != live:
        print(f"FAIL: query answered {sorted(hits)}, live files are {live}",
              file=sys.stderr)
        return 1

    rebuilt = SequentialIndexer(corpus.fs, naive=False).build().index
    if manifest.to_ridx2() != dump_index_ridx2(rebuilt):
        print("FAIL: compacted manifest bytes differ from a from-scratch "
              "rebuild", file=sys.stderr)
        return 1
    if manifest.segment_count > 1 or manifest.tombstones:
        print(f"FAIL: compaction left {manifest.segment_count} segments, "
              f"{len(manifest.tombstones)} tombstones", file=sys.stderr)
        return 1
    print("OK: compacted segments byte-identical to a from-scratch rebuild")
    return 0


if __name__ == "__main__":
    sys.exit(main())
