"""Calibrate a platform model for *this* machine and simulate it.

The paper's methodology, closed into a loop on whatever computer runs
this script:

1. generate a scaled benchmark corpus on disk;
2. measure the four Table-1 stage times and the naive sequential total
   with the *real* engine (real files, real tokenizing, real index);
3. derive a :class:`~repro.platforms.profile.PlatformProfile` from the
   measurements (exactly how the three paper machines were calibrated);
4. run the simulator on the derived profile and check it reproduces the
   measured stage times — the same consistency the paper's Table 1
   gives the built-in profiles.

Python's GIL means the *parallel* speed-ups of this machine cannot be
measured with threads, but the sequential calibration path is fully
real.

Run:  python examples/calibrate_this_machine.py
"""

import os
import shutil
import tempfile
import time

from repro import CorpusGenerator, PAPER_PROFILE, SequentialIndexer
from repro.corpus import materialize
from repro.engine.runner import measure_stage_times
from repro.fsmodel import OsFileSystem
from repro.platforms import StageMeasurements, derive_profile
from repro.simengine import SimPipeline, Workload, WorkloadSpec

SCALE = 0.004  # ~200 files, ~3.5 MB: seconds, not minutes


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="calibrate-")
    try:
        profile = PAPER_PROFILE.scaled(SCALE)
        documents = os.path.join(workdir, "corpus")
        materialize(CorpusGenerator(profile).generate().fs, documents)
        fs = OsFileSystem(documents)
        print(f"corpus: {profile.file_count} files, "
              f"{profile.total_bytes / 1e6:.1f} MB on disk")

        # 2. Real measurements (the paper's Table 1 methodology).
        stage = measure_stage_times(fs)
        t0 = time.perf_counter()
        SequentialIndexer(fs, naive=True).build()
        sequential_total = time.perf_counter() - t0
        print(f"measured: filename {stage.filename_generation:.3f}s, "
              f"read {stage.read_files:.3f}s, "
              f"read+extract {stage.read_and_extract:.3f}s, "
              f"update {stage.index_update:.3f}s, "
              f"naive sequential {sequential_total:.3f}s")

        # 3. Derive this machine's platform model.
        this_machine = derive_profile(
            "this-machine",
            cores=os.cpu_count() or 1,
            clock_ghz=0.0,  # informational only
            measurements=StageMeasurements(
                filename_generation=stage.filename_generation,
                read_files=stage.read_files,
                read_and_extract=stage.read_and_extract,
                index_update=stage.index_update,
                sequential_total=sequential_total,
            ),
            corpus_megabytes=profile.total_bytes / 1e6,
            file_count=profile.file_count,
            seek_ms=0.001,  # page cache, not a spinning disk
        )
        print(f"derived profile: {this_machine.per_stream_mbps:.0f} MB/s "
              f"single stream, scan {this_machine.scan_cpu_s:.3f}s, "
              f"naive update {this_machine.naive_update_s:.3f}s")

        # 4. Simulate the derived profile; stage times must match.
        workload = Workload.synthesize(WorkloadSpec(profile=profile))
        pipeline = SimPipeline(this_machine, workload,
                               batches_per_extractor=40)
        simulated = pipeline.stage_times()
        print("consistency check (measured -> simulated):")
        for label, real, sim in (
            ("read files", stage.read_files, simulated.read_files),
            ("read+extract", stage.read_and_extract,
             simulated.read_and_extract),
            ("index update", stage.index_update, simulated.index_update),
        ):
            deviation = abs(sim / real - 1) * 100
            print(f"  {label:<13} {real:7.3f}s -> {sim:7.3f}s "
                  f"({deviation:.0f}% off)")

        sequential_sim = pipeline.run_sequential().total_s
        print(f"  {'sequential':<13} {sequential_total:7.3f}s -> "
              f"{sequential_sim:7.3f}s")
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
