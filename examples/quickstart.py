"""Quickstart: build an index in memory and search it.

Generates a small synthetic corpus (no disk I/O), indexes it with the
paper's winning design (Implementation 3: replicated indices, never
joined), and runs a few boolean queries.

Run:  python examples/quickstart.py
"""

from repro import (
    CorpusGenerator,
    Implementation,
    IndexGenerator,
    QueryEngine,
    ThreadConfig,
    TINY_PROFILE,
)


def main() -> None:
    # 1. A deterministic synthetic corpus: ~60 ASCII files, Zipfian text.
    corpus = CorpusGenerator(TINY_PROFILE).generate()
    stats = corpus.stats()
    print(f"corpus: {stats.file_count} files, {stats.total_bytes / 1e3:.0f} KB")

    # 2. Build the index: 3 extractor threads feed 2 updater threads,
    #    each updater owns a private index replica (config (3, 2, 0)).
    report = IndexGenerator(corpus.fs).build(
        Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
    )
    print(report.summary())

    # 3. Search.  Implementation 3 leaves the replicas unjoined; the
    #    query engine unions them (optionally with a thread per replica).
    universe = [ref.path for ref in corpus.fs.list_files()]
    engine = QueryEngine(report.index, universe=universe)

    common = corpus.vocabulary[0]  # rank-0 word: appears almost everywhere
    rare = corpus.vocabulary[len(corpus.vocabulary) - 1]
    for query in (common, f"{common} AND {rare}", f"{common} AND NOT {rare}"):
        hits = engine.search(query, parallel=True)
        print(f"  {query!r}: {len(hits)} file(s)"
              + (f", e.g. {hits[0]}" if hits else ""))


if __name__ == "__main__":
    main()
