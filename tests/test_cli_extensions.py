"""Tests for the extended CLI subcommands (mixed corpora, binary
persistence, format-aware indexing, ranked search, refresh)."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def mixed_dir(tmp_path_factory):
    destination = str(tmp_path_factory.mktemp("clix") / "mixed")
    assert main(["generate-corpus", destination, "--scale", "0.001",
                 "--mixed"]) == 0
    return destination


class TestMixedGeneration:
    def test_reports_format_breakdown(self, mixed_dir, capsys):
        # The fixture already ran; regenerate output via a fresh dir.
        pass

    def test_mixed_extensions_on_disk(self, mixed_dir):
        extensions = set()
        for _, _, files in os.walk(mixed_dir):
            extensions.update(os.path.splitext(name)[1] for name in files)
        assert ".txt" in extensions
        assert len(extensions) >= 3


class TestBinaryAndFormats:
    def test_binary_save_and_search(self, mixed_dir, tmp_path, capsys):
        save = str(tmp_path / "index.ridx")
        assert main(["index", mixed_dir, "-i", "1", "-x", "2", "-y", "1",
                     "--formats", "--binary", "--save", save]) == 0
        out = capsys.readouterr().out
        assert "index saved to" in out and "bytes" in out
        from repro.index import load_index

        term = next(iter(load_index(save).terms()))
        assert main(["search", save, term]) == 0

    def test_binary_rejected_for_multi_index(self, mixed_dir, tmp_path, capsys):
        save = str(tmp_path / "multi")
        assert main(["index", mixed_dir, "-i", "3", "-x", "2", "-y", "2",
                     "--binary", "--save", save]) == 2
        assert "binary" in capsys.readouterr().err

    def test_dynamic_mode(self, mixed_dir, capsys):
        assert main(["index", mixed_dir, "-i", "1", "-x", "3",
                     "--dynamic", "steal"]) == 0
        assert "Implementation 1" in capsys.readouterr().out


class TestRankedSearch:
    def test_ranked_output_has_scores(self, mixed_dir, tmp_path, capsys):
        save = str(tmp_path / "r.idx")
        main(["index", mixed_dir, "-i", "1", "-x", "2", "-y", "1",
              "--formats", "--save", save])
        capsys.readouterr()
        from repro.index import load_index

        term = next(iter(load_index(save).terms()))
        assert main(["search", save, term, "--ranked", mixed_dir]) == 0
        out = capsys.readouterr().out
        first = out.splitlines()[0].split()
        float(first[0])  # leading column is a score

    def test_wildcard_search(self, mixed_dir, tmp_path, capsys):
        save = str(tmp_path / "w.idx")
        main(["index", mixed_dir, "-i", "1", "-x", "2", "-y", "1",
              "--save", save])
        capsys.readouterr()
        from repro.index import load_index

        term = next(iter(load_index(save).terms()))
        assert main(["search", save, term[:3] + "*"]) == 0
        assert capsys.readouterr().out.strip()


class TestRefresh:
    def test_refresh_lifecycle(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        main(["generate-corpus", corpus, "--scale", "0.001"])
        index_file = str(tmp_path / "state.idx")
        state_file = str(tmp_path / "state.json")

        assert main(["refresh", corpus, "--index", index_file,
                     "--state", state_file]) == 0
        out = capsys.readouterr().out
        assert "+51 added" in out

        # No changes: second refresh is a no-op.
        assert main(["refresh", corpus, "--index", index_file,
                     "--state", state_file]) == 0
        assert "+0 added, -0 removed, ~0 modified" in capsys.readouterr().out

        # Add a file, then find it through the refreshed index.
        with open(os.path.join(corpus, "novel.txt"), "w") as fh:
            fh.write("uniquemarkerterm appears here")
        assert main(["refresh", corpus, "--index", index_file,
                     "--state", state_file]) == 0
        assert "+1 added" in capsys.readouterr().out
        assert main(["search", index_file, "uniquemarkerterm"]) == 0
        assert "novel.txt" in capsys.readouterr().out

        # The state file is valid JSON with fingerprints.
        with open(state_file) as fh:
            state = json.load(fh)
        assert "novel.txt" in state

    def test_refresh_detects_removal(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus2")
        main(["generate-corpus", corpus, "--scale", "0.001"])
        index_file = str(tmp_path / "i.idx")
        state_file = str(tmp_path / "s.json")
        main(["refresh", corpus, "--index", index_file, "--state", state_file])
        capsys.readouterr()

        victim = None
        for root, _, files in os.walk(corpus):
            if files:
                victim = os.path.join(root, files[0])
                break
        os.remove(victim)
        assert main(["refresh", corpus, "--index", index_file,
                     "--state", state_file]) == 0
        assert "-1 removed" in capsys.readouterr().out


class TestIndexFlagConflicts:
    """Flag combinations that silently do nothing are rejected early."""

    def test_oversubscribe_requires_process_backend(self, mixed_dir, capsys):
        assert main(["index", mixed_dir, "--oversubscribe"]) == 2
        assert "--oversubscribe only applies" in capsys.readouterr().err

    def test_max_retries_requires_process_backend(self, mixed_dir, capsys):
        assert main(["index", mixed_dir, "--max-retries", "3"]) == 2
        assert "--max-retries only applies" in capsys.readouterr().err

    def test_batch_timeout_requires_process_backend(self, mixed_dir, capsys):
        assert main(["index", mixed_dir, "--batch-timeout", "5"]) == 2
        assert "--batch-timeout only applies" in capsys.readouterr().err

    def test_dynamic_rejected_with_process_backend(self, mixed_dir, capsys):
        assert main(["index", mixed_dir, "--backend", "process",
                     "--dynamic", "steal", "--oversubscribe"]) == 2
        assert "--dynamic is incompatible" in capsys.readouterr().err

    def test_on_error_validates_choices(self, mixed_dir, capsys):
        with pytest.raises(SystemExit):
            main(["index", mixed_dir, "--on-error", "ignore"])
        assert "invalid choice" in capsys.readouterr().err


@pytest.fixture
def faulty_cli_fs(monkeypatch):
    """Route the CLI's filesystem through a deterministic fault injector
    poisoning the first file of the corpus."""
    from repro.fsmodel import FaultInjectingFileSystem, FaultSpec, OsFileSystem

    poisoned = {}

    def open_faulty(directory):
        fs = OsFileSystem(directory)
        victim = next(iter(fs.list_files())).path
        poisoned["victim"] = victim
        return FaultInjectingFileSystem(
            fs, {victim: FaultSpec(exc_type=PermissionError,
                                   message="injected fault")}
        )

    monkeypatch.setattr("repro.cli.OsFileSystem", open_faulty)
    return poisoned


class TestIndexErrorPolicy:
    def test_strict_build_fails_with_exit_1(self, mixed_dir, faulty_cli_fs,
                                            capsys):
        assert main(["index", mixed_dir, "-i", "2", "-x", "2", "-y", "0",
                     "-z", "1"]) == 1
        assert "build failed: injected fault" in capsys.readouterr().err

    def test_skip_build_succeeds_and_reports(self, mixed_dir, faulty_cli_fs,
                                             capsys):
        assert main(["index", mixed_dir, "-i", "2", "-x", "2", "-y", "0",
                     "-z", "1", "--on-error", "skip"]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 file(s)" in captured.err
        assert faulty_cli_fs["victim"] in captured.err
        assert "1 skipped" in captured.out

    def test_skip_on_process_backend(self, mixed_dir, faulty_cli_fs, capsys):
        assert main(["index", mixed_dir, "--backend", "process", "-x", "2",
                     "--oversubscribe", "--on-error", "skip",
                     "--max-retries", "1"]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 file(s)" in captured.err
        assert "1 skipped" in captured.out

    def test_sequential_honours_policy(self, mixed_dir, faulty_cli_fs, capsys):
        assert main(["index", mixed_dir, "--sequential"]) == 1
        assert "build failed" in capsys.readouterr().err
        assert main(["index", mixed_dir, "--sequential",
                     "--on-error", "skip"]) == 0
        assert "skipped 1 file(s)" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_output(self, mixed_dir, tmp_path, capsys):
        save = str(tmp_path / "an.idx")
        main(["index", mixed_dir, "-i", "1", "-x", "2", "-y", "1",
              "--save", save])
        capsys.readouterr()
        assert main(["analyze", save, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "terms:" in out
        assert "postings:" in out
        assert "histogram" in out

    def test_analyze_binary_index(self, mixed_dir, tmp_path, capsys):
        save = str(tmp_path / "an.ridx")
        main(["index", mixed_dir, "-i", "1", "-x", "2", "-y", "1",
              "--binary", "--save", save])
        capsys.readouterr()
        assert main(["analyze", save]) == 0
        assert "est. memory:" in capsys.readouterr().out
