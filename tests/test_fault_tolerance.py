"""Fault tolerance: poisoned files, worker crashes, hangs, degradation.

Every test drives a deterministic fault through
:class:`repro.fsmodel.FaultInjectingFileSystem` and checks two things:

1. the build terminates with the policy's promised outcome (strict
   aborts, skip records :class:`FileFailure`s and keeps going);
2. the surviving index is *byte-identical* (RIDX1 canonical bytes) to a
   clean build over the corpus minus the failed files — fault recovery
   must never change what gets indexed, only which files are dropped.

The process-backend tests run with ``oversubscribe=True`` and small
worker counts so they behave on single-CPU CI boxes.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    ERROR_POLICIES,
    FaultPolicy,
    FileFailure,
    PoolUnavailableError,
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    SequentialIndexer,
    ThreadConfig,
)
from repro.engine.procworker import FilesystemSpec, WorkerBatch
from repro.fsmodel import (
    FaultInjectingFileSystem,
    FaultSpec,
    OsFileSystem,
    VirtualFileSystem,
    in_worker_process,
)
from repro.index.binfmt import dump_index_bytes


class HiddenFileSystem:
    """Delegating wrapper that hides named paths from stage 1: the
    reference 'clean corpus minus the failed files'."""

    def __init__(self, inner, hidden) -> None:
        self._inner = inner
        self._hidden = set(hidden)

    def list_files(self, path: str = ""):
        for ref in self._inner.list_files(path):
            if ref.path not in self._hidden:
                yield ref

    def read_file(self, path: str) -> bytes:
        return self._inner.read_file(path)

    def file_size(self, path: str) -> int:
        return self._inner.file_size(path)

    def exists(self, path: str) -> bool:
        return self._inner.exists(path)

    def is_dir(self, path: str) -> bool:
        return self._inner.is_dir(path)


def poison_paths(fs, count=2):
    """Deterministic victim selection: every third file, up to count."""
    paths = [ref.path for ref in fs.list_files()]
    assert len(paths) >= 3 * count
    return paths[:: max(1, len(paths) // count)][:count]


def index_bytes(report):
    return dump_index_bytes(report.index)


def clean_minus(fs, hidden):
    """Canonical bytes of a clean sequential build minus ``hidden``."""
    report = SequentialIndexer(HiddenFileSystem(fs, hidden), naive=False).build()
    return index_bytes(report)


PROC_KW = dict(oversubscribe=True)


# -- fault injection plumbing ------------------------------------------


class TestFaultSpec:
    def test_error_action_raises_everywhere(self):
        spec = FaultSpec(action="error", exc_type=PermissionError, message="no")
        with pytest.raises(PermissionError, match="no: a.txt"):
            spec.trigger("a.txt")

    def test_crash_and_hang_honour_parent_action_in_parent(self):
        assert not in_worker_process()
        with pytest.raises(OSError):
            FaultSpec(action="crash").trigger("a.txt")
        with pytest.raises(OSError):
            FaultSpec(action="hang").trigger("a.txt")
        # parent_action="pass": the fault is worker-only, the parent
        # fallback reads the file normally (trigger returns).
        FaultSpec(action="crash", parent_action="pass").trigger("a.txt")
        FaultSpec(action="hang", parent_action="pass", delay=0.0).trigger("a.txt")

    @pytest.mark.parametrize("bad", ["explode", "", "ERROR"])
    def test_invalid_action_rejected(self, bad):
        with pytest.raises(ValueError, match="action must be"):
            FaultSpec(action=bad)

    def test_invalid_parent_action_rejected(self):
        with pytest.raises(ValueError, match="parent_action"):
            FaultSpec(parent_action="retry")


class TestFaultInjectingFileSystem:
    def test_poisoned_read_raises_others_delegate(self, tiny_fs):
        victim = next(iter(tiny_fs.list_files())).path
        fs = FaultInjectingFileSystem(tiny_fs, {victim: FaultSpec()})
        with pytest.raises(OSError, match="injected fault"):
            fs.read_file(victim)
        assert fs.fault_paths == [victim]
        assert fs.exists(victim)
        assert fs.file_size(victim) == tiny_fs.file_size(victim)
        assert len(list(fs.list_files())) == len(list(tiny_fs.list_files()))
        clean = [r.path for r in tiny_fs.list_files() if r.path != victim]
        assert fs.read_file(clean[0]) == tiny_fs.read_file(clean[0])

    def test_has_no_base_attribute(self, tiny_fs):
        # A ``base`` attr would make FilesystemSpec reopen the wrapper
        # as an on-disk directory and silently drop the faults.
        fs = FaultInjectingFileSystem(tiny_fs, {})
        assert not hasattr(fs, "base")
        spec = FilesystemSpec.from_filesystem(fs)
        assert spec.snapshot is fs and spec.base is None


# -- policy / failure plain data ---------------------------------------


class TestFaultPolicy:
    def test_defaults_are_strict(self):
        policy = FaultPolicy()
        assert policy.on_error == "strict"
        assert not policy.skips
        assert FaultPolicy(on_error="skip").skips

    def test_validation(self):
        with pytest.raises(ValueError, match="on_error"):
            FaultPolicy(on_error="ignore")
        with pytest.raises(ValueError, match="negative"):
            FaultPolicy(max_retries=-1)
        with pytest.raises(TypeError, match="int"):
            FaultPolicy(max_retries=True)
        with pytest.raises(ValueError, match="batch_timeout"):
            FaultPolicy(batch_timeout=0)
        with pytest.raises(ValueError, match="retry_backoff"):
            FaultPolicy(retry_backoff=-0.1)

    def test_error_policies_cover_both_modes(self):
        assert ERROR_POLICIES == ("strict", "skip")


class TestFileFailure:
    def test_from_exception_and_str(self):
        failure = FileFailure.from_exception(
            "docs/a.txt", "read", PermissionError("denied")
        )
        assert failure.path == "docs/a.txt"
        assert failure.stage == "read"
        assert failure.error_type == "PermissionError"
        assert str(failure) == "docs/a.txt [read] PermissionError: denied"

    def test_worker_batch_rejects_unknown_policy(self, tiny_fs):
        with pytest.raises(ValueError, match="on_error"):
            WorkerBatch(
                fs=FilesystemSpec(snapshot=tiny_fs),
                paths=("a",),
                on_error="ignore",
            )


# -- FilesystemSpec boundary (satellite: no duck-typed ``base``) --------


class TestFilesystemSpec:
    def test_os_filesystem_crosses_by_root_path(self, tmp_path):
        (tmp_path / "a.txt").write_bytes(b"alpha beta")
        spec = FilesystemSpec.from_filesystem(OsFileSystem(str(tmp_path)))
        assert spec.base == str(tmp_path)
        assert spec.snapshot is None
        assert spec.open().read_file("a.txt") == b"alpha beta"

    def test_vfs_with_base_attribute_is_still_snapshotted(self):
        # Regression: from_filesystem used to duck-type on any string
        # ``base`` attribute, reopening in-memory filesystems as the
        # wrong on-disk directory.
        vfs = VirtualFileSystem()
        vfs.write_file("a.txt", b"alpha beta")
        vfs.base = "/definitely/not/a/real/corpus"
        spec = FilesystemSpec.from_filesystem(vfs)
        assert spec.base is None
        assert spec.snapshot is vfs
        assert spec.open().read_file("a.txt") == b"alpha beta"

    def test_non_filesystem_rejected(self):
        with pytest.raises(TypeError, match="read_file"):
            FilesystemSpec.from_filesystem(object())

    def test_exactly_one_source_required(self, tiny_fs):
        with pytest.raises(ValueError, match="exactly one"):
            FilesystemSpec(base="/tmp", snapshot=tiny_fs)
        with pytest.raises(ValueError, match="exactly one"):
            FilesystemSpec()


# -- per-file error policy, every backend ------------------------------


def build_with(backend, fs, on_error="strict", **proc_kw):
    if backend == "sequential":
        return SequentialIndexer(fs, naive=False, on_error=on_error).build()
    if backend == "thread":
        return ReplicatedJoinedIndexer(fs, on_error=on_error).build(
            ThreadConfig(2, 0, 1)
        )
    indexer = ProcessReplicatedIndexer(
        fs, on_error=on_error, **PROC_KW, **proc_kw
    )
    return indexer.build(ThreadConfig(2, 0, 1, backend="process"))


BACKENDS = ("sequential", "thread", "process")


class TestSkipPolicy:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unreadable_files_skipped_and_recorded(self, tiny_fs, backend):
        victims = poison_paths(tiny_fs)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {p: FaultSpec(exc_type=PermissionError) for p in victims},
        )
        report = build_with(backend, fs, on_error="skip")
        assert sorted(f.path for f in report.failures) == sorted(victims)
        assert {f.stage for f in report.failures} == {"read"}
        assert {f.error_type for f in report.failures} == {"PermissionError"}
        assert report.indexed_file_count == report.file_count - len(victims)
        assert index_bytes(report) == clean_minus(tiny_fs, victims)
        assert f"{len(victims)} skipped" in report.summary()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_strict_aborts_on_first_error(self, tiny_fs, backend):
        victims = poison_paths(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs, {victims[0]: FaultSpec(exc_type=PermissionError)}
        )
        with pytest.raises(PermissionError, match="injected fault"):
            build_with(backend, fs, on_error="strict")

    def test_unknown_policy_rejected_everywhere(self, tiny_fs):
        for cls in (SequentialIndexer, ReplicatedJoinedIndexer):
            with pytest.raises(ValueError, match="on_error"):
                cls(tiny_fs, on_error="ignore")
        with pytest.raises(ValueError, match="on_error"):
            ProcessReplicatedIndexer(tiny_fs, on_error="ignore")


# -- worker crash and hang recovery (process backend) ------------------


class TestCrashRecovery:
    def test_crash_isolated_and_build_completes(self, tiny_fs):
        victims = poison_paths(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            # Workers running the poisoned batch die via os._exit; the
            # in-parent fallback re-raises (parent_action="error") so
            # the file is recorded as a skip instead of killing the
            # build.
            {victims[0]: FaultSpec(action="crash")},
        )
        indexer = ProcessReplicatedIndexer(
            fs, on_error="skip", max_retries=2, retry_backoff=0.0, **PROC_KW
        )
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.retries > 0
        assert [f.path for f in report.failures] == victims
        assert index_bytes(report) == clean_minus(tiny_fs, victims)
        assert f"{report.retries} retried" in report.summary()

    def test_crash_under_strict_still_terminates(self, tiny_fs):
        # Even under "strict" a crashed worker walks the retry ladder;
        # the in-parent rung then raises the real per-file error
        # instead of an opaque BrokenProcessPool.
        victims = poison_paths(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {victims[0]: FaultSpec(action="crash", exc_type=PermissionError)},
        )
        indexer = ProcessReplicatedIndexer(
            fs, on_error="strict", max_retries=1, retry_backoff=0.0, **PROC_KW
        )
        with pytest.raises(PermissionError, match="injected fault"):
            indexer.build(ThreadConfig(2, 0, 1, backend="process"))


class TestHangRecovery:
    def test_hung_worker_timed_out_and_file_skipped(self, tiny_fs):
        victims = poison_paths(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs, {victims[0]: FaultSpec(action="hang", delay=30.0)}
        )
        indexer = ProcessReplicatedIndexer(
            fs,
            on_error="skip",
            max_retries=1,
            batch_timeout=1.0,
            retry_backoff=0.0,
            **PROC_KW,
        )
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.retries > 0
        assert [f.path for f in report.failures] == victims
        assert index_bytes(report) == clean_minus(tiny_fs, victims)

    def test_transient_hang_recovers_every_file(self, tiny_fs):
        # parent_action="pass": the file only hangs inside workers, so
        # the in-parent fallback indexes it — no failures, full index.
        victims = poison_paths(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {
                victims[0]: FaultSpec(
                    action="hang", delay=30.0, parent_action="pass"
                )
            },
        )
        indexer = ProcessReplicatedIndexer(
            fs,
            on_error="skip",
            max_retries=1,
            batch_timeout=1.0,
            retry_backoff=0.0,
            **PROC_KW,
        )
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.failures == []
        assert index_bytes(report) == index_bytes(
            SequentialIndexer(tiny_fs, naive=False).build()
        )


# -- merge equivalence under failure, policy x fault x backend ---------


FAULTS = {
    "unreadable": FaultSpec(exc_type=PermissionError),
    "crash": FaultSpec(action="crash"),
    "hang": FaultSpec(action="hang", delay=30.0),
}


class TestMergeEquivalenceUnderFailure:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_surviving_index_matches_clean_build(self, tiny_fs, backend, fault):
        # In the threaded backends crash/hang specs fire in the parent
        # process and behave as plain errors (parent_action="error"),
        # so the whole matrix reduces to one invariant: the surviving
        # files' index is byte-identical to a clean build minus the
        # poisoned files — regardless of backend, fault kind, or how
        # many retry rungs the recovery walked.
        victims = poison_paths(tiny_fs)
        fs = FaultInjectingFileSystem(
            tiny_fs, {p: FAULTS[fault] for p in victims}
        )
        proc_kw = {}
        if backend == "process":
            proc_kw = dict(
                max_retries=2,
                batch_timeout=1.0 if fault == "hang" else None,
                retry_backoff=0.0,
            )
        report = build_with(backend, fs, on_error="skip", **proc_kw)
        assert sorted(f.path for f in report.failures) == sorted(victims)
        assert index_bytes(report) == clean_minus(tiny_fs, victims)


# -- graceful degradation to threads -----------------------------------


class TestDegradation:
    def test_pool_failure_degrades_to_threads(self, tiny_fs, monkeypatch):
        indexer = ProcessReplicatedIndexer(tiny_fs, **PROC_KW)

        def refuse(max_workers):
            raise PoolUnavailableError("fork refused (test)")

        monkeypatch.setattr(indexer, "_create_executor", refuse)
        with pytest.warns(RuntimeWarning, match="degrading to the threaded"):
            report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.degraded
        assert "(degraded to threads)" in report.summary()
        assert index_bytes(report) == index_bytes(
            SequentialIndexer(tiny_fs, naive=False).build()
        )
        assert len(report.extractor_times) == 2

    def test_degraded_build_keeps_error_policy(self, tiny_fs, monkeypatch):
        victims = poison_paths(tiny_fs)
        fs = FaultInjectingFileSystem(
            tiny_fs, {p: FaultSpec() for p in victims}
        )
        indexer = ProcessReplicatedIndexer(fs, on_error="skip", **PROC_KW)
        monkeypatch.setattr(
            indexer,
            "_create_executor",
            lambda max_workers: (_ for _ in ()).throw(
                PoolUnavailableError("no pool")
            ),
        )
        with pytest.warns(RuntimeWarning):
            report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.degraded
        assert sorted(f.path for f in report.failures) == sorted(victims)
        assert index_bytes(report) == clean_minus(tiny_fs, victims)


# -- observability attributes (satellite: AttributeError regression) ---


class TestObservability:
    def test_attributes_exist_before_first_build(self, tiny_fs):
        indexer = ProcessReplicatedIndexer(tiny_fs, **PROC_KW)
        # Regression: last_extractor_times was only assigned inside
        # build(), so reading it on a fresh indexer raised
        # AttributeError.
        assert indexer.last_extractor_times == []
        assert indexer.last_failures == []
        assert indexer.last_retries == 0

    def test_attributes_reset_by_failed_build(self, tiny_fs):
        victim = poison_paths(tiny_fs, count=1)[0]
        fs = FaultInjectingFileSystem(tiny_fs, {victim: FaultSpec()})
        indexer = ProcessReplicatedIndexer(fs, on_error="skip", **PROC_KW)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert len(indexer.last_failures) == 1
        # A subsequent strict indexer starts clean even when its build
        # aborts part-way.
        strict = ProcessReplicatedIndexer(fs, on_error="strict", **PROC_KW)
        with pytest.raises(OSError):
            strict.build(ThreadConfig(2, 0, 1, backend="process"))
        assert strict.last_failures == []
        assert strict.last_extractor_times == [0.0, 0.0]
        assert report.retries == 0


# -- pool capped at non-empty batches (satellite) ----------------------


class TestSmallCorpusPool:
    def make_fs(self, n):
        vfs = VirtualFileSystem()
        for i in range(n):
            vfs.write_file(f"f{i}.txt", f"alpha beta gamma{i}".encode())
        return vfs

    def test_more_workers_than_files(self):
        vfs = self.make_fs(3)
        indexer = ProcessReplicatedIndexer(vfs, oversubscribe=True)
        report = indexer.build(ThreadConfig(5, 0, 1, backend="process"))
        # Accounting keeps length x; the two empty slots never forked a
        # process and stay at exactly 0.0.
        assert len(report.extractor_times) == 5
        assert sorted(report.extractor_times)[:2] == [0.0, 0.0]
        assert sum(t > 0.0 for t in report.extractor_times) == 3
        assert report.file_count == 3
        assert index_bytes(report) == index_bytes(
            SequentialIndexer(vfs, naive=False).build()
        )

    def test_empty_corpus(self):
        vfs = VirtualFileSystem()
        indexer = ProcessReplicatedIndexer(vfs, oversubscribe=True)
        report = indexer.build(ThreadConfig(3, 0, 1, backend="process"))
        assert report.file_count == 0
        assert report.term_count == 0
        assert report.extractor_times == [0.0, 0.0, 0.0]
