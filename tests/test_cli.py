"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    destination = str(tmp_path_factory.mktemp("cli") / "corpus")
    assert main(["generate-corpus", destination, "--scale", "0.001"]) == 0
    return destination


class TestGenerateCorpus:
    def test_writes_files(self, corpus_dir, capsys):
        import os

        count = sum(len(files) for _, _, files in os.walk(corpus_dir))
        assert count == 51  # 0.001 x 51,000

    def test_refuses_existing(self, corpus_dir, capsys):
        with pytest.raises(FileExistsError):
            main(["generate-corpus", corpus_dir, "--scale", "0.001"])


class TestIndexCommand:
    def test_impl3_and_save(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "replicas")
        assert main(["index", corpus_dir, "-i", "3", "-x", "3", "-y", "2",
                     "--save", save]) == 0
        output = capsys.readouterr().out
        assert "Implementation 3" in output
        assert "saved" in output

    def test_impl1_single_file_save(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "out.idx")
        assert main(["index", corpus_dir, "-i", "1", "-x", "2", "-y", "1",
                     "--save", save]) == 0
        import os

        assert os.path.isfile(save)

    def test_sequential(self, corpus_dir, capsys):
        assert main(["index", corpus_dir, "--sequential"]) == 0
        assert "files" in capsys.readouterr().out

    def test_invalid_config_rejected(self, corpus_dir, capsys):
        assert main(["index", corpus_dir, "-i", "1", "-x", "2", "-z", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestSearchCommand:
    def test_search_saved_index(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "search.idx")
        main(["index", corpus_dir, "-i", "1", "-x", "2", "-y", "1",
              "--save", save])
        capsys.readouterr()
        from repro.index import load_index

        term = next(iter(load_index(save).terms()))
        assert main(["search", save, term]) == 0
        out, err = capsys.readouterr()
        assert "file(s)" in err
        assert out.strip()

    def test_search_multi_parallel(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "replicas")
        main(["index", corpus_dir, "-i", "3", "-x", "2", "-y", "2",
              "--save", save])
        capsys.readouterr()
        from repro.index import load_multi_index

        term = next(iter(load_multi_index(save).replicas[0].terms()))
        assert main(["search", save, term, "--parallel"]) == 0


class TestSimulateCommand:
    def test_small_scale_simulation(self, capsys):
        assert main(["simulate", "--platform", "quad-core", "-i", "3",
                     "-x", "3", "-y", "2", "--scale", "0.01"]) == 0
        output = capsys.readouterr().out
        assert "Implementation 3" in output
        assert "utilization" in output

    def test_sequential_simulation(self, capsys):
        assert main(["simulate", "--platform", "octo-core", "--sequential",
                     "--scale", "0.01"]) == 0
        assert "Sequential" in capsys.readouterr().out

    def test_impl1_reports_lock_stats(self, capsys):
        assert main(["simulate", "--platform", "manycore-32", "-i", "1",
                     "-x", "4", "-y", "2", "--scale", "0.01"]) == 0
        assert "index lock" in capsys.readouterr().out

    def test_invalid_config(self, capsys):
        assert main(["simulate", "-i", "2", "-x", "3", "-y", "1", "-z", "0",
                     "--scale", "0.01"]) == 2


class TestHelp:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "commands" in capsys.readouterr().out
