"""Tests for mixed-format corpus generation and format-aware indexing."""

import pytest

from repro.corpus import CorpusGenerator, TINY_PROFILE
from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.formats import default_registry
from repro.formats.mixed import DEFAULT_MIX, generate_mixed_corpus
from repro.text import Tokenizer

#: Boilerplate terms the encoders may add beyond the original text.
BOILERPLATE = {
    "generated", "document", "repro", "benchmark", "kind", "title",
}


@pytest.fixture(scope="module")
def mixed():
    return generate_mixed_corpus(TINY_PROFILE)


@pytest.fixture(scope="module")
def plain():
    return CorpusGenerator(TINY_PROFILE).generate()


class TestMixedGeneration:
    def test_file_count_preserved(self, mixed, plain):
        assert len(list(mixed.fs.list_files())) == len(
            list(plain.fs.list_files())
        )

    def test_all_formats_present(self, mixed):
        # 60 files and a 10 % minimum share: every format should appear.
        assert all(count > 0 for count in mixed.format_counts.values())
        assert sum(mixed.format_counts.values()) == TINY_PROFILE.file_count

    def test_extensions_match_formats(self, mixed):
        registry = default_registry()
        counts = {}
        for ref in mixed.fs.list_files():
            name = registry.detect(ref.path).name
            counts[name] = counts.get(name, 0) + 1
        assert counts == {k: v for k, v in mixed.format_counts.items() if v}

    def test_deterministic(self):
        a = generate_mixed_corpus(TINY_PROFILE)
        b = generate_mixed_corpus(TINY_PROFILE)
        assert a.format_counts == b.format_counts
        paths_a = [(r.path, r.size) for r in a.fs.list_files()]
        paths_b = [(r.path, r.size) for r in b.fs.list_files()]
        assert paths_a == paths_b

    def test_custom_mix(self):
        mixed = generate_mixed_corpus(TINY_PROFILE, mix={"html": 1.0})
        assert mixed.format_counts["html"] == TINY_PROFILE.file_count

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            generate_mixed_corpus(TINY_PROFILE, mix={"pdf": 1.0})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            generate_mixed_corpus(TINY_PROFILE, mix={"html": 0.0})

    def test_default_mix_sums_to_one(self):
        assert sum(DEFAULT_MIX.values()) == pytest.approx(1.0)


class TestRoundTripTerms:
    """Encoding then extracting must preserve the searchable terms."""

    def test_terms_preserved_per_file(self, mixed, plain):
        registry = default_registry()
        tokenizer = Tokenizer()
        plain_by_stem = {
            _stem(ref.path): set(
                tokenizer.tokenize(plain.fs.read_file(ref.path))
            )
            for ref in plain.fs.list_files()
        }
        checked = 0
        for ref in mixed.fs.list_files():
            original = plain_by_stem[_stem(ref.path)]
            text = registry.extract_text(ref.path, mixed.fs.read_file(ref.path))
            extracted = set(tokenizer.tokenize(text))
            assert original <= extracted, f"{ref.path} lost terms"
            assert extracted - original <= BOILERPLATE, (
                f"{ref.path} gained unexpected terms: "
                f"{sorted(extracted - original - BOILERPLATE)[:5]}"
            )
            checked += 1
        assert checked == TINY_PROFILE.file_count


class TestFormatAwareEngine:
    def test_sequential_with_registry(self, mixed):
        report = SequentialIndexer(mixed.fs, registry=default_registry()).build()
        assert report.term_count > 0

    def test_parallel_matches_sequential_on_mixed_corpus(self, mixed):
        registry = default_registry()
        sequential = SequentialIndexer(
            mixed.fs, naive=False, registry=registry
        ).build()
        parallel = IndexGenerator(mixed.fs, registry=registry).build(
            Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)
        )
        assert parallel.index == sequential.index

    def test_registry_changes_result_on_html(self, mixed):
        # Without the registry, HTML tags pollute the index.
        with_registry = SequentialIndexer(
            mixed.fs, registry=default_registry()
        ).build()
        without = SequentialIndexer(mixed.fs).build()
        assert "doctype" not in with_registry.index
        assert "doctype" in without.index

    def test_docz_unindexable_without_registry(self, mixed):
        registry = default_registry()
        docz_files = [
            ref for ref in mixed.fs.list_files() if ref.path.endswith(".docz")
        ]
        assert docz_files
        tokenizer = Tokenizer()
        raw_terms = tokenizer.tokenize(mixed.fs.read_file(docz_files[0].path))
        extracted = tokenizer.tokenize(
            registry.extract_text(
                docz_files[0].path, mixed.fs.read_file(docz_files[0].path)
            )
        )
        # The binary container hides terms from a raw scan.
        assert len(set(extracted)) >= len(set(raw_terms)) * 0.9


def _stem(path: str) -> str:
    dot = path.rfind(".")
    return path[:dot] if dot > path.rfind("/") else path
