"""Tests for the binary index format (varints, gaps, round trips)."""

import pytest

from repro.engine import SequentialIndexer
from repro.index import InvertedIndex
from repro.index.binfmt import (
    decode_gaps,
    decode_varint,
    dump_index_bytes,
    encode_gaps,
    encode_varint,
    load_index_binary,
    load_index_bytes,
    save_index_binary,
)
from repro.index.serialize import save_index
from repro.text import TermBlock


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 16_383, 16_384, 2**32, 2**63 - 1]
    )
    def test_round_trip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data, 0)
        assert decoded == value
        assert offset == len(data)

    def test_single_byte_below_128(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80", 0)

    def test_sequence_decoding(self):
        blob = encode_varint(5) + encode_varint(1000) + encode_varint(0)
        a, offset = decode_varint(blob, 0)
        b, offset = decode_varint(blob, offset)
        c, offset = decode_varint(blob, offset)
        assert (a, b, c) == (5, 1000, 0)
        assert offset == len(blob)


class TestGapEncoding:
    def test_round_trip(self):
        ids = [0, 1, 5, 6, 100, 10_000]
        data = encode_gaps(ids)
        decoded, offset = decode_gaps(data, 0, len(ids))
        assert decoded == ids
        assert offset == len(data)

    def test_dense_ids_cost_one_byte_each(self):
        ids = list(range(1000))
        assert len(encode_gaps(ids)) == 1000

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            encode_gaps([3, 3])
        with pytest.raises(ValueError):
            encode_gaps([5, 2])

    def test_empty(self):
        assert encode_gaps([]) == b""
        assert decode_gaps(b"", 0, 0) == ([], 0)


class TestIndexRoundTrip:
    def make_index(self):
        index = InvertedIndex()
        index.add_block(TermBlock("docs/a.txt", ("alpha", "beta", "gamma")))
        index.add_block(TermBlock("docs/b.txt", ("beta",)))
        index.add_block(TermBlock("z.txt", ("alpha", "delta")))
        return index

    def test_bytes_round_trip(self):
        index = self.make_index()
        assert load_index_bytes(dump_index_bytes(index)) == index

    def test_file_round_trip(self, tmp_path):
        index = self.make_index()
        path = str(tmp_path / "index.ridx")
        written = save_index_binary(index, path)
        assert written > 0
        assert load_index_binary(path) == index

    def test_empty_index(self):
        assert load_index_bytes(dump_index_bytes(InvertedIndex())) == (
            InvertedIndex()
        )

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            load_index_bytes(b"JUNK")

    def test_canonical_output(self):
        # Same content inserted in different orders -> identical bytes.
        a = self.make_index()
        b = InvertedIndex()
        b.add_block(TermBlock("z.txt", ("delta", "alpha")))
        b.add_block(TermBlock("docs/b.txt", ("beta",)))
        b.add_block(TermBlock("docs/a.txt", ("gamma", "alpha", "beta")))
        assert dump_index_bytes(a) == dump_index_bytes(b)

    def test_smaller_than_json(self, tiny_fs, tmp_path):
        import os

        index = SequentialIndexer(tiny_fs, naive=False).build().index
        json_path = str(tmp_path / "index.idx")
        binary_path = str(tmp_path / "index.ridx")
        save_index(index, json_path)
        save_index_binary(index, binary_path)
        assert os.path.getsize(binary_path) < os.path.getsize(json_path) / 2

    def test_real_corpus_round_trip(self, tiny_fs):
        index = SequentialIndexer(tiny_fs, naive=False).build().index
        assert load_index_bytes(dump_index_bytes(index)) == index


class TestDynamicDistributionModes:
    """The engine's runtime work-acquisition extension."""

    @pytest.mark.parametrize("dynamic", ["steal", "queue"])
    def test_same_index_as_static(self, tiny_fs, dynamic):
        from repro.engine import Implementation, IndexGenerator, ThreadConfig

        static = IndexGenerator(tiny_fs).build(
            Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
        )
        moving = IndexGenerator(tiny_fs, dynamic=dynamic).build(
            Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
        )
        assert moving.index == static.index

    @pytest.mark.parametrize("dynamic", ["steal", "queue"])
    def test_replicated_union_preserved(self, tiny_fs, dynamic):
        from repro.engine import Implementation, IndexGenerator, ThreadConfig
        from repro.index import join_indices

        static = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)
        )
        moving = IndexGenerator(tiny_fs, dynamic=dynamic).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert join_indices(moving.index.replicas) == static.index

    def test_invalid_mode_rejected(self, tiny_fs):
        from repro.engine import IndexGenerator, Implementation, ThreadConfig

        with pytest.raises(ValueError):
            IndexGenerator(tiny_fs, dynamic="magic").build(
                Implementation.SHARED_LOCKED, ThreadConfig(2, 0, 0)
            )
