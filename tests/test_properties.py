"""Property-based tests (hypothesis) on the core data structures and
invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adt import FnvHashMap, FnvHashSet
from repro.corpus.zipf import ZipfSampler
from repro.distribute import RoundRobinStrategy, SizeBalancedStrategy
from repro.fsmodel import FileRef
from repro.hashing import fnv1a_32, fnv1a_64
from repro.index import InvertedIndex, join_indices, join_pairwise_tree
from repro.query import QueryEngine, parse_query
from repro.text import TermBlock, Tokenizer, dedup_terms

# "and"/"or"/"not" are query-language operators, not terms; a generated
# term colliding with one breaks query-string round-trips by design.
keys = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1,
               max_size=12).filter(lambda t: t not in ("and", "or", "not"))
paths = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


class TestHashProperties:
    @given(st.binary(max_size=64))
    def test_deterministic(self, data):
        assert fnv1a_64(data) == fnv1a_64(data)
        assert fnv1a_32(data) == fnv1a_32(data)

    @given(st.binary(max_size=64))
    def test_output_ranges(self, data):
        assert 0 <= fnv1a_32(data) < 2**32
        assert 0 <= fnv1a_64(data) < 2**64

    @given(st.text(max_size=64))
    def test_str_bytes_agreement(self, text):
        assert fnv1a_64(text) == fnv1a_64(text.encode("utf-8"))


class TestHashMapModel:
    """FnvHashMap must behave exactly like a dict under any op sequence."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "del", "get", "setdefault", "pop"]),
                keys,
                st.integers(),
            ),
            max_size=60,
        )
    )
    def test_against_dict_model(self, operations):
        model = {}
        subject = FnvHashMap()
        for op, key, value in operations:
            if op == "set":
                model[key] = value
                subject[key] = value
            elif op == "del":
                if key in model:
                    del model[key]
                    del subject[key]
            elif op == "get":
                assert subject.get(key) == model.get(key)
            elif op == "setdefault":
                assert subject.setdefault(key, value) == model.setdefault(
                    key, value
                )
            elif op == "pop":
                assert subject.pop(key, None) == model.pop(key, None)
            assert len(subject) == len(model)
        assert dict(subject.items()) == model
        assert sorted(subject.keys()) == sorted(model.keys())

    @given(st.lists(keys, max_size=80))
    def test_insert_then_lookup_all(self, insert_keys):
        subject = FnvHashMap()
        for i, key in enumerate(insert_keys):
            subject[key] = i
        for key in insert_keys:
            assert key in subject


class TestHashSetModel:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "discard", "check"]), keys),
            max_size=60,
        )
    )
    def test_against_set_model(self, operations):
        model = set()
        subject = FnvHashSet()
        for op, key in operations:
            if op == "add":
                assert subject.add(key) == (key not in model)
                model.add(key)
            elif op == "discard":
                assert subject.discard(key) == (key in model)
                model.discard(key)
            else:
                assert (key in subject) == (key in model)
            assert len(subject) == len(model)
        assert set(subject) == model

    @given(st.lists(keys), st.lists(keys))
    def test_union_intersection_laws(self, a_elements, b_elements):
        a = FnvHashSet(a_elements)
        b = FnvHashSet(b_elements)
        assert set(a.union(b)) == set(a_elements) | set(b_elements)
        assert set(a.intersection(b)) == set(a_elements) & set(b_elements)


class TestTokenizerProperties:
    @given(st.binary(max_size=300))
    def test_never_crashes_and_emits_valid_terms(self, content):
        tokenizer = Tokenizer()
        for term in tokenizer.tokenize(content):
            assert 2 <= len(term) <= 64
            assert term == term.lower()
            assert term.isalnum()

    @given(st.binary(max_size=200))
    def test_deterministic(self, content):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize(content) == tokenizer.tokenize(content)

    @given(st.lists(keys, max_size=40))
    def test_dedup_idempotent_and_order_preserving(self, terms):
        once = dedup_terms(terms)
        assert dedup_terms(once) == once
        assert list(once) == sorted(set(once), key=list(once).index)
        assert set(once) == set(terms)


class TestDistributionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=80),
           st.integers(min_value=1, max_value=9))
    def test_round_robin_partition(self, sizes, workers):
        files = [FileRef(f"f{i}", s) for i, s in enumerate(sizes)]
        distribution = RoundRobinStrategy().distribute(files, workers)
        flat = sorted(
            ref.path for a in distribution.assignments for ref in a
        )
        assert flat == sorted(ref.path for ref in files)
        counts = [len(a) for a in distribution.assignments]
        assert max(counts) - min(counts) <= 1

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1,
                    max_size=60),
           st.integers(min_value=1, max_value=6))
    def test_lpt_within_four_thirds_of_optimal(self, sizes, workers):
        # LPT is a 4/3-approximation of the optimal makespan.  OPT is at
        # least the mean load, the biggest item, and — when there are
        # more items than workers — the sum of the m-th and (m+1)-th
        # largest items (two of them must share a worker).  (LPT is NOT
        # always better than round-robin on a lucky input, so that is
        # not asserted.)
        files = [FileRef(f"f{i}", s) for i, s in enumerate(sizes)]
        lpt = SizeBalancedStrategy().distribute(files, workers)
        descending = sorted(sizes, reverse=True)
        optimum_bound = max(sum(sizes) / workers, descending[0])
        if len(sizes) > workers:
            optimum_bound = max(
                optimum_bound, descending[workers - 1] + descending[workers]
            )
        assert max(lpt.bytes_per_worker()) <= optimum_bound * 4 / 3 + 1e-9


@st.composite
def block_lists(draw):
    """A list of term blocks with unique paths."""
    n = draw(st.integers(min_value=0, max_value=12))
    blocks = []
    for i in range(n):
        terms = draw(st.lists(keys, max_size=6, unique=True))
        blocks.append(TermBlock(f"file{i}", tuple(terms)))
    return blocks


class TestIndexProperties:
    @given(block_lists(), st.integers(min_value=1, max_value=5))
    def test_join_independent_of_partition(self, blocks, replicas):
        """Joining replicas gives the same index no matter how blocks
        were distributed — the invariant Implementation 2 rests on."""
        direct = InvertedIndex()
        for block in blocks:
            direct.add_block(block)

        partitions = [InvertedIndex() for _ in range(replicas)]
        for i, block in enumerate(blocks):
            partitions[i % replicas].add_block(block)
        assert join_indices(partitions) == direct
        assert join_pairwise_tree(partitions) == direct

    @given(block_lists())
    def test_posting_count_equals_unique_pairs(self, blocks):
        index = InvertedIndex()
        for block in blocks:
            index.add_block(block)
        assert index.posting_count == sum(len(b) for b in blocks)

    @given(block_lists())
    def test_en_bloc_equals_naive(self, blocks):
        en_bloc = InvertedIndex()
        naive = InvertedIndex()
        for block in blocks:
            en_bloc.add_block(block)
            for term in block.terms:
                naive.add_term_naive(term, block.path)
                naive.add_term_naive(term, block.path)  # duplicate insert
        assert en_bloc == naive


class TestQueryProperties:
    @given(st.lists(st.tuples(paths, st.lists(keys, min_size=1, max_size=4,
                                              unique=True)),
                    max_size=10))
    def test_demorgan(self, docs):
        index = InvertedIndex()
        universe = set()
        seen_paths = set()
        for path, terms in docs:
            if path in seen_paths:
                continue
            seen_paths.add(path)
            universe.add(path)
            index.add_block(TermBlock(path, tuple(terms)))
        engine = QueryEngine(index, universe=universe)
        all_terms = sorted({t for _, ts in docs for t in ts})
        if len(all_terms) < 2:
            return
        a, b = all_terms[0], all_terms[1]
        assert engine.search(f"NOT ({a} OR {b})") == engine.search(
            f"NOT {a} AND NOT {b}"
        )
        assert engine.search(f"NOT ({a} AND {b})") == engine.search(
            f"NOT {a} OR NOT {b}"
        )

    @given(st.lists(keys, min_size=1, max_size=5, unique=True))
    def test_and_subset_of_or(self, terms):
        index = InvertedIndex()
        index.add_block(TermBlock("f", tuple(terms)))
        engine = QueryEngine(index)
        conjunction = set(engine.search(" AND ".join(terms)))
        disjunction = set(engine.search(" OR ".join(terms)))
        assert conjunction <= disjunction


class TestZipfProperties:
    @given(st.integers(min_value=2, max_value=500),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=30)
    def test_samples_within_support(self, n, count):
        sampler = ZipfSampler(n, seed=1)
        assert all(0 <= r < n for r in sampler.sample_many(count))


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1,
                    max_size=8),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_processor_sharing_conserves_work(self, demands, cores):
        from repro.sim import Kernel, Use

        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=float(cores), per_job_cap=1.0)

        def process(units):
            yield Use(cpu, units)

        for i, demand in enumerate(demands):
            kernel.spawn(f"p{i}", process(demand))
        total = kernel.run()
        # Work conservation and the two makespan bounds of PS scheduling.
        assert cpu.work_done >= sum(demands) * (1 - 1e-6)
        lower = max(max(demands), sum(demands) / cores)
        assert total >= lower - 1e-6
        assert total <= sum(demands) + 1e-6
