"""Tests for FnvHashMap."""

import pytest

from repro.adt import FnvHashMap


class TestBasicOperations:
    def test_empty(self):
        m = FnvHashMap()
        assert len(m) == 0
        assert not m
        assert "missing" not in m

    def test_set_and_get(self):
        m = FnvHashMap()
        m["alpha"] = 1
        assert m["alpha"] == 1
        assert "alpha" in m
        assert len(m) == 1

    def test_overwrite_keeps_size(self):
        m = FnvHashMap()
        m["k"] = 1
        m["k"] = 2
        assert m["k"] == 2
        assert len(m) == 1

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            FnvHashMap()["nope"]

    def test_delete(self):
        m = FnvHashMap()
        m["k"] = 1
        del m["k"]
        assert "k" not in m
        assert len(m) == 0

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            del FnvHashMap()["nope"]

    def test_bytes_keys(self):
        m = FnvHashMap()
        m[b"raw"] = 9
        assert m[b"raw"] == 9

    def test_construct_from_items(self):
        m = FnvHashMap(iter([("a", 1), ("b", 2)]))
        assert m["a"] == 1 and m["b"] == 2

    def test_bool_nonempty(self):
        m = FnvHashMap()
        m["x"] = 0
        assert m

    def test_repr_mentions_size(self):
        m = FnvHashMap()
        m["x"] = 1
        assert "size=1" in repr(m)


class TestDictProtocolHelpers:
    def test_get_default(self):
        m = FnvHashMap()
        assert m.get("missing") is None
        assert m.get("missing", 7) == 7

    def test_setdefault_inserts(self):
        m = FnvHashMap()
        value = m.setdefault("k", [])
        value.append(1)
        assert m["k"] == [1]

    def test_setdefault_preserves_existing(self):
        m = FnvHashMap()
        m["k"] = "old"
        assert m.setdefault("k", "new") == "old"
        assert m["k"] == "old"

    def test_pop(self):
        m = FnvHashMap()
        m["k"] = 3
        assert m.pop("k") == 3
        assert "k" not in m

    def test_pop_missing_raises(self):
        with pytest.raises(KeyError):
            FnvHashMap().pop("k")

    def test_pop_missing_with_default(self):
        assert FnvHashMap().pop("k", 42) == 42

    def test_clear(self):
        m = FnvHashMap()
        for i in range(100):
            m[f"k{i}"] = i
        m.clear()
        assert len(m) == 0
        assert m.bucket_count == 16


class TestSingleProbeHelpers:
    def test_get_or_insert_calls_factory_once_when_missing(self):
        m = FnvHashMap()
        calls = []

        def factory():
            calls.append(1)
            return []

        value = m.get_or_insert("k", factory)
        value.append(7)
        assert m["k"] == [7]
        assert calls == [1]

    def test_get_or_insert_skips_factory_when_present(self):
        m = FnvHashMap()
        m["k"] = "old"

        def exploding_factory():
            raise AssertionError("factory must not run for present keys")

        assert m.get_or_insert("k", exploding_factory) == "old"

    def test_get_or_insert_triggers_growth(self):
        m = FnvHashMap()
        for i in range(100):
            m.get_or_insert(f"k{i}", list)
        assert len(m) == 100
        assert m.bucket_count > 16

    def test_insert_absent_inserts_and_returns_none(self):
        m = FnvHashMap()
        assert m.insert_absent("k", 5) is None
        assert m["k"] == 5
        assert len(m) == 1

    def test_insert_absent_returns_existing_without_overwrite(self):
        m = FnvHashMap()
        m["k"] = "old"
        assert m.insert_absent("k", "new") == "old"
        assert m["k"] == "old"
        assert len(m) == 1

    def test_insert_absent_triggers_growth(self):
        m = FnvHashMap()
        for i in range(100):
            assert m.insert_absent(f"k{i}", i) is None
        assert len(m) == 100
        assert m.bucket_count > 16


class TestIteration:
    def test_keys_values_items_consistent(self):
        m = FnvHashMap()
        data = {f"key{i}": i for i in range(50)}
        for k, v in data.items():
            m[k] = v
        assert sorted(m.keys()) == sorted(data.keys())
        assert sorted(m.values()) == sorted(data.values())
        assert dict(m.items()) == data

    def test_iter_is_keys(self):
        m = FnvHashMap()
        m["a"] = 1
        m["b"] = 2
        assert sorted(m) == ["a", "b"]


class TestRehashing:
    def test_grows_past_load_factor(self):
        m = FnvHashMap()
        for i in range(100):
            m[f"key{i}"] = i
        assert m.bucket_count >= 128
        assert m.load_factor <= 1.0

    def test_contents_survive_growth(self):
        m = FnvHashMap()
        n = 1000
        for i in range(n):
            m[f"key{i}"] = i * 2
        assert len(m) == n
        for i in range(n):
            assert m[f"key{i}"] == i * 2

    def test_collisions_resolved_by_chaining(self):
        # Force everything into few buckets by inserting far more keys
        # than the initial table size before any lookup.
        m = FnvHashMap()
        keys = [f"collision-test-{i}" for i in range(64)]
        for i, key in enumerate(keys):
            m[key] = i
        assert all(m[key] == i for i, key in enumerate(keys))
