"""Tests for the ASCII chart renderers."""

import pytest

from repro.experiments.textplot import bar_chart, line_chart


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = line_chart(
            {"impl1": [(1, 1.0), (2, 2.0)], "impl3": [(1, 1.5), (2, 3.5)]},
            title="speed-ups",
        )
        assert "speed-ups" in chart
        assert "o=impl1" in chart
        assert "x=impl3" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels(self):
        chart = line_chart(
            {"s": [(0, 0), (10, 5)]}, x_label="cores", y_label="speedup"
        )
        assert "x: cores" in chart and "y: speedup" in chart

    def test_value_range_on_axes(self):
        chart = line_chart({"s": [(2, 1.5), (64, 3.5)]})
        assert "3.5" in chart and "1.5" in chart
        assert "64" in chart and "2" in chart

    def test_empty(self):
        assert line_chart({}) == "(no data)"
        assert line_chart({"s": []}) == "(no data)"

    def test_single_point(self):
        chart = line_chart({"s": [(1, 1)]})
        assert "o" in chart

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 0)]}, width=3)

    def test_monotone_series_rises_leftright(self):
        chart = line_chart({"s": [(0, 0), (1, 1), (2, 2)]}, width=30,
                           height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_marker_rows = {}
        for row_index, row in enumerate(rows):
            for column, char in enumerate(row):
                if char == "o":
                    first_marker_rows[column] = row_index
        columns = sorted(first_marker_rows)
        # Higher x (later column) should sit on a higher row (smaller idx).
        assert first_marker_rows[columns[0]] > first_marker_rows[columns[-1]]


class TestBarChart:
    def test_renders_bars(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=20, unit="s")
        lines = chart.splitlines()
        assert lines[0].startswith("a")
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert "10s" in lines[0]

    def test_title(self):
        assert bar_chart([("a", 1)], title="times").startswith("times")

    def test_zero_values(self):
        chart = bar_chart([("a", 0.0)])
        assert "#" not in chart

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", 1)], width=2)
