"""Tests for incremental index maintenance.

The defining invariant: after any sequence of filesystem changes and
refreshes, the incremental index equals a from-scratch rebuild.
"""

import pytest

from repro.corpus import CorpusGenerator, TINY_PROFILE
from repro.engine import SequentialIndexer
from repro.index.incremental import (
    ChangeReport,
    IncrementalIndex,
    IncrementalIndexer,
    diff_snapshots,
    take_snapshot,
)
from repro.text import TermBlock


def block(path, *terms):
    return TermBlock(path, tuple(terms))


class TestIncrementalIndex:
    def test_add_and_lookup(self):
        index = IncrementalIndex()
        index.add(block("f1", "cat", "dog"))
        assert index.lookup("cat") == ["f1"]
        assert "f1" in index
        assert len(index) == 1

    def test_duplicate_add_rejected(self):
        index = IncrementalIndex()
        index.add(block("f", "x"))
        with pytest.raises(ValueError):
            index.add(block("f", "y"))

    def test_remove(self):
        index = IncrementalIndex()
        index.add(block("f1", "cat", "dog"))
        index.add(block("f2", "cat"))
        assert index.remove("f1") is True
        assert index.lookup("cat") == ["f2"]
        assert index.lookup("dog") == []
        assert "dog" not in index.index  # empty postings pruned

    def test_remove_missing(self):
        assert IncrementalIndex().remove("ghost") is False

    def test_remove_then_readd(self):
        index = IncrementalIndex()
        index.add(block("f", "x"))
        index.remove("f")
        index.add(block("f", "y"))
        assert index.lookup("y") == ["f"]
        assert index.lookup("x") == []

    def test_update_delta(self):
        index = IncrementalIndex()
        index.add(block("f", "keep", "drop"))
        index.update(block("f", "keep", "gain"))
        assert index.lookup("keep") == ["f"]
        assert index.lookup("gain") == ["f"]
        assert index.lookup("drop") == []

    def test_update_unknown_adds(self):
        index = IncrementalIndex()
        index.update(block("f", "x"))
        assert index.lookup("x") == ["f"]

    def test_update_does_not_duplicate_kept_terms(self):
        index = IncrementalIndex()
        index.add(block("f", "stable"))
        index.update(block("f", "stable", "new"))
        assert index.lookup("stable") == ["f"]
        assert index.index.posting_count == 2

    def test_document_paths(self):
        index = IncrementalIndex()
        index.add(block("a", "x"))
        index.add(block("b", "y"))
        assert sorted(index.document_paths()) == ["a", "b"]

    def test_matches_bulk_rebuild_after_churn(self):
        """Random-ish churn, then compare against a fresh index."""
        operations = [
            ("add", block("f1", "a", "b")),
            ("add", block("f2", "b", "c")),
            ("add", block("f3", "a")),
            ("remove", "f2"),
            ("update", block("f1", "a", "z")),
            ("add", block("f4", "c", "z")),
            ("remove", "f3"),
            ("update", block("f4", "c")),
        ]
        incremental = IncrementalIndex()
        live = {}
        for op, arg in operations:
            if op == "add":
                incremental.add(arg)
                live[arg.path] = arg
            elif op == "remove":
                incremental.remove(arg)
                live.pop(arg, None)
            else:
                incremental.update(arg)
                live[arg.path] = arg
        from repro.index import InvertedIndex

        rebuilt = InvertedIndex()
        for b in live.values():
            rebuilt.add_block(b)
        assert incremental.index == rebuilt


class TestSnapshots:
    def make_fs(self):
        from repro.fsmodel import VirtualFileSystem

        fs = VirtualFileSystem()
        fs.write_file("a.txt", b"alpha")
        fs.write_file("b.txt", b"beta")
        return fs

    def test_snapshot_covers_all_files(self):
        snapshot = take_snapshot(self.make_fs())
        assert set(snapshot) == {"a.txt", "b.txt"}

    def test_no_change(self):
        fs = self.make_fs()
        assert diff_snapshots(take_snapshot(fs), take_snapshot(fs)) == (
            [], [], [],
        )

    def test_added_detected(self):
        fs = self.make_fs()
        old = take_snapshot(fs)
        fs.write_file("c.txt", b"gamma")
        added, removed, modified = diff_snapshots(old, take_snapshot(fs))
        assert added == ["c.txt"] and not removed and not modified

    def test_removed_detected(self):
        fs = self.make_fs()
        old = take_snapshot(fs)
        fs.remove_file("a.txt")
        added, removed, modified = diff_snapshots(old, take_snapshot(fs))
        assert removed == ["a.txt"] and not added and not modified

    def test_modified_detected(self):
        fs = self.make_fs()
        old = take_snapshot(fs)
        fs.replace_file("b.txt", b"beta changed")
        added, removed, modified = diff_snapshots(old, take_snapshot(fs))
        assert modified == ["b.txt"] and not added and not removed

    def test_same_size_different_content_detected(self):
        fs = self.make_fs()
        old = take_snapshot(fs)
        fs.replace_file("a.txt", b"alphA")  # same length
        _, _, modified = diff_snapshots(old, take_snapshot(fs))
        assert modified == ["a.txt"]


class TestIncrementalIndexer:
    @pytest.fixture
    def fs(self):
        return CorpusGenerator(TINY_PROFILE).generate().fs

    def test_first_refresh_indexes_everything(self, fs):
        indexer = IncrementalIndexer(fs)
        report = indexer.refresh()
        assert len(report.added) == TINY_PROFILE.file_count
        assert report.total == len(report.added)

    def test_refresh_idempotent(self, fs):
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        assert indexer.refresh().total == 0

    def test_matches_bulk_build(self, fs):
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        bulk = SequentialIndexer(fs, naive=False).build()
        assert indexer.index.index == bulk.index

    def test_tracks_changes_and_matches_rebuild(self, fs):
        indexer = IncrementalIndexer(fs)
        indexer.refresh()

        some_file = next(iter(fs.list_files())).path
        fs.replace_file(some_file, b"totally new words here")
        fs.write_file("brand_new.txt", b"fresh content words")
        victim = [r.path for r in fs.list_files()][3]
        fs.remove_file(victim)

        report = indexer.refresh()
        assert report.added == ["brand_new.txt"]
        assert report.removed == [victim]
        assert report.modified == [some_file]

        bulk = SequentialIndexer(fs, naive=False).build()
        assert indexer.index.index == bulk.index

    def test_queries_follow_changes(self, fs):
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        fs.write_file("needle.txt", b"xyzzyneedle appears here")
        indexer.refresh()
        assert indexer.index.lookup("xyzzyneedle") == ["needle.txt"]
        fs.remove_file("needle.txt")
        indexer.refresh()
        assert indexer.index.lookup("xyzzyneedle") == []

    def test_change_report_totals(self):
        report = ChangeReport(added=["a"], removed=["b", "c"], modified=[])
        assert report.total == 3


class TestRefreshCorrectness:
    """The replay-idempotency and read-once fixes, pinned."""

    def make_fs(self):
        from repro.fsmodel import VirtualFileSystem

        fs = VirtualFileSystem()
        fs.write_file("a.txt", b"alpha words")
        fs.write_file("b.txt", b"beta words")
        return fs

    def test_replay_after_partial_refresh_converges(self):
        """A crashed refresh leaves the index part-mutated and the
        snapshot stale; re-running must not raise 'already indexed'."""
        from repro.text.termblock import TermBlock

        fs = self.make_fs()
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        # Simulate a refresh that crashed after applying half its
        # delta: c.txt was added to the index, d.txt too, but the
        # snapshot swap never happened — and d.txt has since vanished.
        fs.write_file("c.txt", b"gamma words")
        indexer.index.add(TermBlock("c.txt", ("gamma", "words")))
        indexer.index.add(TermBlock("d.txt", ("delta",)))
        report = indexer.refresh()
        assert report.added == ["c.txt"]
        bulk = SequentialIndexer(fs, naive=False).build()
        assert indexer.index.index == bulk.index
        assert indexer.index.lookup("delta") == []

    def test_replay_after_crashed_refresh_with_faultfs(self):
        """End to end: a fault aborts refresh mid-scan; the retry
        (fault cleared) converges to the from-scratch rebuild."""
        import pytest as _pytest

        from repro.fsmodel.faultfs import FaultInjectingFileSystem, FaultSpec

        fs = self.make_fs()
        clean = IncrementalIndexer(fs)
        clean.refresh()
        fs.replace_file("a.txt", b"alpha rewritten")
        fs.write_file("c.txt", b"gamma words")
        faulty = FaultInjectingFileSystem(
            fs, {"c.txt": FaultSpec(action="error", exc_type=OSError)}
        )
        crashed = IncrementalIndexer(
            faulty, index=clean.index, snapshot=clean.snapshot
        )
        with _pytest.raises(OSError):
            crashed.refresh()
        # Retry against the healthy filesystem, same persisted state.
        retry = IncrementalIndexer(
            fs, index=crashed.index, snapshot=crashed.snapshot
        )
        report = retry.refresh()
        assert report.added == ["c.txt"]
        assert report.modified == ["a.txt"]
        bulk = SequentialIndexer(fs, naive=False).build()
        assert retry.index.index == bulk.index

    def test_each_file_read_once_per_refresh(self):
        """The fingerprint and the indexed content come from one read —
        the TOCTOU double-read is gone."""
        from collections import Counter

        fs = self.make_fs()

        class CountingFs:
            def __init__(self, inner):
                self.inner = inner
                self.reads = Counter()

            def read_file(self, path):
                self.reads[path] += 1
                return self.inner.read_file(path)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        counting = CountingFs(fs)
        indexer = IncrementalIndexer(counting)
        indexer.refresh()
        assert set(counting.reads.values()) == {1}
        counting.reads.clear()
        fs.replace_file("a.txt", b"alpha rewritten")
        indexer.refresh()
        assert counting.reads["a.txt"] == 1
        assert counting.reads["b.txt"] == 1  # no stat support: hashed once

    def test_removals_apply_before_adds(self):
        """A path removed while a differently-cased sibling appears in
        the same interval must never be doubly live; removals land
        first, then upserts."""
        fs = self.make_fs()
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        content = fs.read_file("a.txt")
        fs.remove_file("a.txt")
        fs.write_file("a2.txt", content)
        report = indexer.refresh()
        assert report.removed == ["a.txt"]
        assert report.added == ["a2.txt"]
        assert indexer.index.lookup("alpha") == ["a2.txt"]
        bulk = SequentialIndexer(fs, naive=False).build()
        assert indexer.index.index == bulk.index

    def test_remove_and_readd_identical_content_is_noop(self):
        fs = self.make_fs()
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        content = fs.read_file("b.txt")
        fs.remove_file("b.txt")
        fs.write_file("b.txt", content)
        report = indexer.refresh()
        assert report.total == 0
        assert indexer.index.lookup("beta") == ["b.txt"]
