"""Documentation hygiene: the docs must not drift from the code.

These tests parse README.md / DESIGN.md / EXPERIMENTS.md and verify
that every module they reference exists, every example they advertise
is on disk (and vice versa), and the paper numbers they quote agree
with the single source of truth in ``repro.experiments.paper``.
"""

import importlib
import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name):
    with open(os.path.join(REPO, name), encoding="utf-8") as fh:
        return fh.read()


class TestModuleReferences:
    @pytest.mark.parametrize("document", ["README.md", "DESIGN.md",
                                          "EXPERIMENTS.md"])
    def test_referenced_modules_importable(self, document):
        text = read(document)
        modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text))
        if document == "DESIGN.md":
            assert modules, "DESIGN.md must reference its modules"
        for module in sorted(modules):
            importlib.import_module(module)

    def test_design_benchmark_files_exist(self):
        text = read("DESIGN.md")
        for path in set(re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`", text)):
            assert os.path.isfile(os.path.join(REPO, path)), path


class TestExamplesAdvertised:
    def test_every_example_in_readme(self):
        readme = read("README.md")
        examples = sorted(
            name for name in os.listdir(os.path.join(REPO, "examples"))
            if name.endswith(".py")
        )
        assert examples
        for name in examples:
            assert f"examples/{name}" in readme, (
                f"examples/{name} missing from README"
            )

    def test_no_phantom_examples_in_readme(self):
        readme = read("README.md")
        for mentioned in set(re.findall(r"examples/([a-z_]+\.py)", readme)):
            assert os.path.isfile(
                os.path.join(REPO, "examples", mentioned)
            ), f"README mentions nonexistent examples/{mentioned}"


class TestPaperNumbersConsistent:
    def test_experiments_quotes_paper_speedups(self):
        from repro.engine.config import Implementation
        from repro.experiments import PAPER_BEST

        text = read("EXPERIMENTS.md")
        for platform, entries in PAPER_BEST.items():
            for entry in entries.values():
                assert f"{entry.exec_time_s:.1f}" in text, (
                    f"paper time {entry.exec_time_s} for {platform} "
                    "not quoted in EXPERIMENTS.md"
                )

    def test_design_quotes_sequential_totals(self):
        from repro.experiments import PAPER_SEQUENTIAL

        text = read("DESIGN.md")
        for total in PAPER_SEQUENTIAL.values():
            assert f"{total:.0f}" in text or f"{total:.1f}" in text

    def test_paper_stage_times_quoted_in_experiments(self):
        from repro.experiments import PAPER_STAGE_TIMES

        text = read("EXPERIMENTS.md")
        for stages in PAPER_STAGE_TIMES.values():
            for value in stages:
                assert f"{value:.1f}" in text or f"{value:.0f}" in text


class TestRepoLayout:
    def test_deliverable_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml", "docs/simulator.md",
                     "tools/reproduce.sh"):
            assert os.path.exists(os.path.join(REPO, name)), name

    def test_every_package_has_docstring(self):
        import repro

        root = os.path.dirname(repro.__file__)
        for entry in sorted(os.listdir(root)):
            package_init = os.path.join(root, entry, "__init__.py")
            if os.path.isfile(package_init):
                module = importlib.import_module(f"repro.{entry}")
                assert module.__doc__, f"repro.{entry} lacks a docstring"

    def test_every_public_module_has_docstring(self):
        import repro

        root = os.path.dirname(repro.__file__)
        for dirpath, _, files in os.walk(root):
            for name in files:
                if not name.endswith(".py") or name.startswith("_"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                module_name = "repro." + rel[:-3].replace(os.sep, ".")
                module = importlib.import_module(module_name)
                assert module.__doc__, f"{module_name} lacks a docstring"
