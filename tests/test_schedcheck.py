"""The schedule checker, checked.

Covers the subsystem's own guarantees: replay determinism, the
differential oracle against the sequential build, deadlock and timeout
modelling, happens-before race detection (including the mutation
self-test: a deliberately broken lock must be caught with a replayable
seed), lock-order-inversion detection, record mode, the raw-threading
lint, and the ``repro-schedcheck`` CLI.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.engine.config import ThreadConfig
from repro.schedcheck import (
    CooperativeScheduler,
    DeadlockError,
    InstrumentedSyncProvider,
    Tracer,
    UnlockedSyncProvider,
    VectorClock,
    explore,
    find_lock_inversions,
    find_races,
    make_corpus,
    make_strategy,
    run_schedule,
    sequential_reference,
)
from repro.schedcheck.cli import main as cli_main
from repro.schedcheck.harness import parse_seed_range
from repro.schedcheck.lint import lint_file, lint_paths, DEFAULT_TARGETS


@pytest.fixture(scope="module")
def sched_fs():
    return make_corpus(file_count=8)


@pytest.fixture(scope="module")
def sched_ref(sched_fs):
    return sequential_reference(sched_fs)


# -- vector clocks ---------------------------------------------------------


class TestVectorClock:
    def test_tick_and_get(self):
        clock = VectorClock()
        assert clock.get("a") == 0
        clock.tick("a")
        clock.tick("a")
        assert clock.get("a") == 2

    def test_join_is_componentwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"y": 5, "z": 2})
        a.join(b)
        assert a.as_dict() == {"x": 3, "y": 5, "z": 2}

    def test_join_none_is_noop(self):
        a = VectorClock({"x": 1})
        a.join(None)
        assert a.as_dict() == {"x": 1}

    def test_dominates_and_concurrent(self):
        lo = VectorClock({"a": 1})
        hi = VectorClock({"a": 2, "b": 1})
        assert hi.dominates(lo)
        assert not lo.dominates(hi)
        sideways = VectorClock({"c": 1})
        assert lo.concurrent_with(sideways)
        assert not lo.concurrent_with(hi)


# -- determinism / replay --------------------------------------------------


@pytest.mark.parametrize("strategy", ["random", "pct"])
def test_same_seed_replays_identically(sched_fs, strategy):
    config = ThreadConfig(2, 1, 0)
    first = run_schedule(
        "impl1", config, sched_fs, seed=11, strategy=strategy, keep_trace=True
    )
    second = run_schedule(
        "impl1", config, sched_fs, seed=11, strategy=strategy, keep_trace=True
    )
    assert first.schedule == second.schedule
    assert first.tracer.trace.signature() == second.tracer.trace.signature()
    assert first.digest == second.digest


def test_different_seeds_explore_different_schedules(sched_fs):
    config = ThreadConfig(2, 1, 0)
    schedules = {
        tuple(
            run_schedule(
                "impl1", config, sched_fs, seed, strategy="random",
                keep_trace=True,
            ).schedule
        )
        for seed in range(6)
    }
    assert len(schedules) > 1, "six seeds produced one identical schedule"


def test_strategy_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_strategy("fifo", 0)


# -- differential oracle ---------------------------------------------------


@pytest.mark.parametrize(
    "engine,threads",
    [
        ("impl1", (2, 1, 0)),
        ("impl1s", (2, 1, 0)),
        ("impl2", (2, 0, 1)),
        ("impl3", (2, 2, 0)),
    ],
)
def test_explored_schedules_match_sequential(
    sched_fs, sched_ref, engine, threads
):
    for seed in (0, 1):
        run = run_schedule(
            engine,
            ThreadConfig(*threads),
            sched_fs,
            seed,
            strategy="mixed",
            expected=sched_ref,
        )
        assert run.ok, run.error
        assert run.matches_reference is True
        assert not run.races, run.races
        assert not run.inversions, run.inversions


def test_explore_report_aggregates(sched_fs):
    report = explore(
        "impl2", ThreadConfig(2, 0, 1), range(4), fs=sched_fs
    )
    assert len(report.runs) == 4
    assert report.clean
    assert report.total_steps > 0
    assert "clean" in report.summary()


# -- mutation self-test ----------------------------------------------------


def _broken_impl1_factory(tracer, scheduler):
    return UnlockedSyncProvider(
        tracer=tracer, scheduler=scheduler, break_locks=("impl1.index-lock",)
    )


def test_broken_lock_is_caught_with_replayable_seed(sched_fs, sched_ref):
    """The acceptance mutation: disabling Implementation 1's index lock
    must surface as a detected race, and the seed must replay it."""
    config = ThreadConfig(2, 0, 0)  # two extractors write the index inline
    caught_seed = None
    for seed in range(20):
        run = run_schedule(
            "impl1", config, sched_fs, seed, strategy="random",
            expected=sched_ref, provider_factory=_broken_impl1_factory,
        )
        if run.races:
            caught_seed = seed
            race = run.races[0]
            break
    assert caught_seed is not None, "mutation survived 20 schedules"
    assert race.location == "impl1.shared-index"
    assert not race.first.locks and not race.second.locks

    # Replay: the same seed finds the same first race again.
    replay = run_schedule(
        "impl1", config, sched_fs, caught_seed, strategy="random",
        expected=sched_ref, provider_factory=_broken_impl1_factory,
    )
    assert replay.races
    assert replay.races[0].first.seq == race.first.seq
    assert replay.races[0].second.seq == race.second.seq


def test_intact_lock_stays_clean_on_same_seeds(sched_fs, sched_ref):
    config = ThreadConfig(2, 0, 0)
    for seed in range(10):
        run = run_schedule(
            "impl1", config, sched_fs, seed, strategy="random",
            expected=sched_ref,
        )
        assert run.clean, run.describe()


# -- deadlock + lock-order inversion ---------------------------------------


def _inversion_scenario(provider):
    """Two threads nest two locks in opposite orders."""
    first = provider.lock("inv.A")
    second = provider.lock("inv.B")

    def forward():
        with first:
            provider.access("inv.data")
            with second:
                provider.access("inv.data")

    def backward():
        with second:
            provider.access("inv.data")
            with first:
                provider.access("inv.data")

    one = provider.thread(forward, name="forward")
    two = provider.thread(backward, name="backward")
    one.start()
    two.start()
    one.join()
    two.join()


def test_some_schedule_deadlocks_and_is_reported():
    hit = None
    for seed in range(40):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy("random", seed))
        provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)
        try:
            provider.run(lambda: _inversion_scenario(provider))
        except DeadlockError as exc:
            hit = (seed, exc)
            break
    assert hit is not None, "opposite-order nesting never deadlocked"
    _seed, error = hit
    assert "deadlock" in str(error)
    assert len(error.blocked) >= 2


def test_lock_inversion_detected_even_without_deadlock():
    """On schedules that happen to complete, the inversion checker still
    flags the opposite-order nesting as a deadlock recipe."""
    for seed in range(40):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy("random", seed))
        provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)
        try:
            provider.run(lambda: _inversion_scenario(provider))
        except DeadlockError:
            continue
        inversions = find_lock_inversions(tracer)
        assert inversions, "completed run did not flag the inversion"
        pair = {inversions[0].first, inversions[0].second}
        assert pair == {"inv.A", "inv.B"}
        return
    pytest.fail("every seed deadlocked; no completed run to check")


def test_engine_runs_have_no_lock_inversions(sched_fs):
    run = run_schedule(
        "impl1s", ThreadConfig(2, 1, 0), sched_fs, seed=5, strategy="random"
    )
    assert run.inversions == []


# -- deterministic timeouts ------------------------------------------------


def test_timed_wait_fires_deterministically():
    tracer = Tracer()
    scheduler = CooperativeScheduler(make_strategy("random", 0))
    provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)

    def scenario():
        cond = provider.condition(name="never-notified")
        with cond:
            return cond.wait(timeout=0.01)

    assert provider.run(scenario) is False


def test_unnotified_untimed_wait_is_a_deadlock():
    tracer = Tracer()
    scheduler = CooperativeScheduler(make_strategy("random", 0))
    provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)

    def scenario():
        cond = provider.condition(name="never-notified")
        with cond:
            cond.wait()

    with pytest.raises(DeadlockError):
        provider.run(scenario)


def test_schedule_budget_is_enforced(sched_fs):
    run = run_schedule(
        "impl1", ThreadConfig(2, 1, 0), sched_fs, seed=0, max_steps=5
    )
    assert not run.ok
    assert "ScheduleBudgetExceeded" in run.error


# -- race detector unit behaviour ------------------------------------------


def test_fork_join_orders_accesses():
    """Parent write -> child write -> joined parent write: no races."""
    tracer = Tracer()
    scheduler = CooperativeScheduler(make_strategy("random", 1))
    provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)

    def scenario():
        provider.access("shared")

        def child():
            provider.access("shared")

        worker = provider.thread(child, name="child")
        worker.start()
        worker.join()
        provider.access("shared")

    provider.run(scenario)
    assert find_races(tracer) == []


def test_unsynchronized_writes_race():
    tracer = Tracer()
    scheduler = CooperativeScheduler(make_strategy("random", 1))
    provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)

    def scenario():
        def writer():
            provider.access("shared")

        threads = [
            provider.thread(writer, name=f"w{i}") for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    provider.run(scenario)
    races = find_races(tracer)
    assert races
    assert races[0].location == "shared"


def test_reads_do_not_race_with_reads():
    tracer = Tracer()
    scheduler = CooperativeScheduler(make_strategy("random", 1))
    provider = InstrumentedSyncProvider(tracer=tracer, scheduler=scheduler)

    def scenario():
        def reader():
            provider.access("shared", write=False)

        threads = [
            provider.thread(reader, name=f"r{i}") for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    provider.run(scenario)
    assert find_races(tracer) == []


# -- record mode -----------------------------------------------------------


def test_record_mode_traces_a_real_build(sched_fs, sched_ref):
    from repro.engine.impl2 import ReplicatedJoinedIndexer
    from repro.schedcheck.harness import canonical_bytes

    provider = InstrumentedSyncProvider()  # no scheduler: real threads
    indexer = ReplicatedJoinedIndexer(sched_fs, sync=provider)
    report = indexer.build(ThreadConfig(2, 2, 1))
    assert canonical_bytes(report.index) == sched_ref
    assert len(provider.tracer.trace) > 0
    assert find_races(provider.tracer) == []
    assert find_lock_inversions(provider.tracer) == []


# -- lint ------------------------------------------------------------------


def test_lint_flags_raw_threading(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        textwrap.dedent(
            """
            import threading
            import threading as t
            from threading import Lock, Condition as Cond

            a = threading.Lock()
            b = t.Condition()
            c = Lock()
            d = Cond()
            e = threading.Thread(target=print)
            safe = threading.get_ident()
            """
        )
    )
    findings = lint_file(bad)
    assert len(findings) == 5
    assert {f.construct for f in findings} == {"Lock", "Condition", "Thread"}


def test_lint_accepts_provider_routed_code(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "import threading\n"
        "def f(self):\n"
        "    lock = self.sync.lock('x')\n"
        "    ident = threading.get_ident()\n"
    )
    assert lint_file(good) == []


def test_engine_tree_is_lint_clean():
    assert lint_paths(DEFAULT_TARGETS) == []


# -- CLI -------------------------------------------------------------------


def test_cli_sweep_is_clean(capsys):
    code = cli_main(
        ["--engine", "impl2", "--threads", "2,0,1", "--seeds", "0:6",
         "--files", "6"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "6 schedules" in out
    assert "clean" in out


def test_cli_mutation_self_test(capsys):
    code = cli_main(
        ["--engine", "impl1", "--threads", "2,0,0", "--seeds", "0:10",
         "--files", "6", "--mutate-lock", "impl1.index-lock"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "mutation caught" in out
    assert "race on 'impl1.shared-index'" in out


def test_cli_replay_prints_schedule(capsys):
    code = cli_main(
        ["--engine", "impl1", "--threads", "2,1,0", "--replay", "11",
         "--files", "6"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "schedule (" in out
    assert "trace tail:" in out


def test_cli_lint_flag(capsys):
    assert cli_main(["--lint"]) == 0
    assert "raw-threading lint: clean" in capsys.readouterr().out


def test_cli_rejects_invalid_threads(capsys):
    code = cli_main(["--engine", "impl2", "--threads", "2,0,0"])
    assert code == 2
    assert "invalid --threads" in capsys.readouterr().err


def test_parse_seed_range():
    assert parse_seed_range("0:200") == (0, 200)
    assert parse_seed_range("7") == (7, 8)
    with pytest.raises(ValueError):
        parse_seed_range("5:5")
