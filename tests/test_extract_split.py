"""Huge-file divide-and-conquer: chunk planning, boundary alignment,
join semantics, engine equivalence, and mid-chunk fault recovery.

The central invariant everything here pins:

    a split build's index is byte-identical (RIDX1 canonical bytes) to
    the same build with splitting disabled,

for every backend, extractor and threshold — chunking may only change
*who* extracts the bytes, never what lands in the index.  The fault
tests then drive the PR-2 recovery ladder (retry -> in-parent
fallback) through mid-chunk crashes/hangs/errors and require either
full recovery or a whole-file skip: a half-indexed document must never
exist.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    ReplicatedUnjoinedIndexer,
    SequentialIndexer,
    SharedLockedIndexer,
    ThreadConfig,
)
from repro.extract import (
    AsciiExtractor,
    CodeExtractor,
    SplitJoiner,
    TsvExtractor,
    expand_file_refs,
    plan_chunks,
    read_chunk,
)
from repro.extract.split import read_range
from repro.formats import default_registry
from repro.fsmodel import (
    FaultInjectingFileSystem,
    FaultSpec,
    VirtualFileSystem,
)
from repro.fsmodel.nodes import ChunkRef, FileRef
from repro.index.binfmt import dump_index_bytes
from repro.index.merge import join_indices
from repro.index.multi import MultiIndex
from repro.obs import Recorder
from repro.obs import recorder as obsrec


@pytest.fixture
def fresh_obs():
    previous = obsrec.set_recorder(Recorder(enabled=False))
    try:
        yield obsrec.get_recorder()
    finally:
        obsrec.set_recorder(previous)


def flat_bytes(index):
    if isinstance(index, MultiIndex):
        index = join_indices(index.replicas)
    return dump_index_bytes(index)


# -- chunk planning ----------------------------------------------------


class TestPlanChunks:
    def test_small_file_is_one_chunk(self):
        assert plan_chunks(100, 100) == [(0, 100)]

    def test_chunks_cover_exactly_once(self):
        chunks = plan_chunks(1000, 64)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 1000
        for (_, a_end), (b_start, _) in zip(chunks, chunks[1:]):
            assert a_end == b_start

    def test_chunk_count_is_ceiling(self):
        assert len(plan_chunks(1001, 100)) == 11

    def test_sizes_near_equal(self):
        sizes = [end - start for start, end in plan_chunks(1000, 64)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            plan_chunks(10, 0)


class TestChunkRef:
    def test_carries_chunk_geometry(self):
        ref = ChunkRef(
            path="big.txt", size=50, start=100, end=150, index=2,
            count=4, file_size=400,
        )
        assert isinstance(ref, FileRef)
        assert ref.size == 50  # chunk length, so sizebalanced spreads chunks

    def test_validates_range_and_index(self):
        with pytest.raises(ValueError):
            ChunkRef(path="x", size=1, start=5, end=3, index=0, count=1,
                     file_size=10)
        with pytest.raises(ValueError):
            ChunkRef(path="x", size=1, start=0, end=1, index=3, count=2,
                     file_size=1)


# -- boundary alignment ------------------------------------------------


def chunked_terms(fs, path, extractor, threshold):
    """Concatenated per-chunk terms, in chunk order."""
    size = fs.file_size(path)
    out = []
    for start, end in plan_chunks(size, threshold):
        data = read_chunk(
            fs, path, size, start, end, extractor.boundary_bytes
        )
        out.extend(extractor.chunk_terms(data))
    return out


class TestReadChunkAlignment:
    def make_fs(self, content):
        fs = VirtualFileSystem()
        fs.write_file("f.txt", content)
        return fs

    @pytest.mark.parametrize("threshold", (1, 3, 7, 16, 1000))
    def test_chunked_equals_whole(self, threshold):
        content = b"alpha beta12 GAMMA,delta epsilon zeta " * 4
        fs = self.make_fs(content)
        ex = AsciiExtractor()
        assert chunked_terms(fs, "f.txt", ex, threshold) == ex.tokenize(
            content
        )

    def test_one_giant_run_owned_by_first_chunk(self):
        content = b"x" * 64
        fs = self.make_fs(content)
        ex = AsciiExtractor()
        assert chunked_terms(fs, "f.txt", ex, 16) == ex.tokenize(content)

    def test_mid_run_chunk_contributes_nothing(self):
        fs = self.make_fs(b"x" * 64)
        data = read_chunk(fs, "f.txt", 64, 16, 32,
                          AsciiExtractor().boundary_bytes)
        assert data == b""

    @pytest.mark.parametrize("threshold", (2, 5, 11, 64))
    def test_tsv_chunks_hold_whole_records(self, threshold):
        content = b"1\thello world\tspam\n2\tbye now\teggs\n3\tlast\tone\n"
        fs = self.make_fs(content)
        ex = TsvExtractor(columns=(1,))
        assert chunked_terms(fs, "f.txt", ex, threshold) == ex.terms(
            "f.txt", content
        )

    @settings(max_examples=60, deadline=None)
    @given(
        content=st.binary(max_size=300),
        threshold=st.integers(min_value=1, max_value=50),
    )
    def test_property_chunked_equals_whole(self, content, threshold):
        fs = self.make_fs(content)
        ex = AsciiExtractor()
        assert chunked_terms(fs, "f.txt", ex, threshold) == ex.tokenize(
            content
        )

    def test_read_range_falls_back_to_slicing(self):
        class Minimal:
            def read_file(self, path):
                return b"0123456789"

        assert read_range(Minimal(), "f", 3, 4) == b"3456"


# -- work-list expansion -----------------------------------------------


class TestExpandFileRefs:
    def make_fs(self):
        fs = VirtualFileSystem()
        fs.write_file("small.txt", b"tiny")
        fs.write_file("big.txt", b"word " * 100)
        fs.write_file("page.html", b"<html>" + b"tag " * 200 + b"</html>")
        return fs

    def test_threshold_none_disables_splitting(self):
        fs = self.make_fs()
        files = list(fs.list_files())
        refs, split = expand_file_refs(fs, files, AsciiExtractor(), None)
        assert refs == files
        assert split == []

    def test_oversized_files_become_chunk_runs(self):
        fs = self.make_fs()
        refs, split = expand_file_refs(
            fs, list(fs.list_files()), AsciiExtractor(), 100
        )
        assert split == ["big.txt", "page.html"]
        chunks = [r for r in refs if isinstance(r, ChunkRef)]
        assert {c.path for c in chunks} == {"big.txt", "page.html"}
        small = [r for r in refs if r.path == "small.txt"]
        assert not isinstance(small[0], ChunkRef)

    def test_non_plaintext_formats_stay_whole(self):
        fs = self.make_fs()
        ex = AsciiExtractor(registry=default_registry())
        refs, split = expand_file_refs(fs, list(fs.list_files()), ex, 100)
        assert split == ["big.txt"]  # the HTML file cannot be chunked
        assert not any(
            isinstance(r, ChunkRef) and r.path == "page.html" for r in refs
        )

    def test_unreadable_head_leaves_file_whole(self):
        fs = self.make_fs()
        poisoned = FaultInjectingFileSystem(
            fs, {"big.txt": FaultSpec(exc_type=PermissionError)}
        )
        refs, split = expand_file_refs(
            poisoned, list(fs.list_files()), AsciiExtractor(), 100
        )
        assert "big.txt" not in split
        assert not any(
            isinstance(r, ChunkRef) and r.path == "big.txt" for r in refs
        )


# -- the joiner --------------------------------------------------------


class TestSplitJoiner:
    def test_releases_in_chunk_order_on_last_part(self):
        joiner = SplitJoiner()
        assert joiner.add("f", 2, 3, ["c"]) is None
        assert joiner.add("f", 0, 3, ["a"]) is None
        assert joiner.add("f", 1, 3, ["b"]) == ["a", "b", "c"]

    def test_releases_exactly_once(self):
        joiner = SplitJoiner()
        joiner.add("f", 0, 2, ["a"])
        assert joiner.add("f", 1, 2, ["b"]) == ["a", "b"]
        # A fresh file under the same path starts clean.
        assert joiner.add("f", 0, 1, ["x"]) == ["x"]

    def test_failure_poisons_the_whole_file(self):
        joiner = SplitJoiner()
        joiner.add("f", 0, 3, ["a"])
        assert joiner.fail("f", 3) is True
        assert joiner.add("f", 2, 3, ["c"]) is None  # nothing released

    def test_only_first_failure_reports(self):
        joiner = SplitJoiner()
        assert joiner.fail("f", 3) is True
        assert joiner.fail("f", 3) is False
        assert joiner.add("f", 1, 3, ["b"]) is None

    def test_files_are_independent(self):
        joiner = SplitJoiner()
        joiner.fail("bad", 2)
        assert joiner.add("good", 0, 1, ["t"]) == ["t"]


# -- engine equivalence: split == unsplit -------------------------------


@pytest.fixture(scope="module")
def split_fs():
    fs = VirtualFileSystem()
    fs.write_file("small-1.txt", b"needle in the haystack")
    fs.write_file("small-2.txt", b"cat dog ferret")
    fs.write_file("huge-1.txt", b"alpha beta gamma delta epsilon " * 120)
    fs.write_file("huge-2.log", b"GET /idx?q=term200 HTTP 1.1 ok\n" * 150)
    fs.write_file("huge-3.tsv", b"7\tsplit me evenly\tacross workers\n" * 90)
    return fs


def build_report(backend, fs, extractor=None, split_threshold=None, **kw):
    if backend == "impl1":
        return SharedLockedIndexer(
            fs, extractor=extractor, split_threshold=split_threshold
        ).build(ThreadConfig(3, 2, 0))
    if backend == "impl2":
        return ReplicatedJoinedIndexer(
            fs, extractor=extractor, split_threshold=split_threshold
        ).build(ThreadConfig(2, 0, 1))
    if backend == "impl3":
        return ReplicatedUnjoinedIndexer(
            fs, extractor=extractor, split_threshold=split_threshold
        ).build(ThreadConfig(3, 2, 0))
    return ProcessReplicatedIndexer(
        fs,
        extractor=extractor,
        split_threshold=split_threshold,
        oversubscribe=True,
        **kw,
    ).build(ThreadConfig(2, 0, 1, backend="process"))


THREADED = ("impl1", "impl2", "impl3")


class TestSplitBuildEquivalence:
    @pytest.mark.parametrize("backend", THREADED + ("process",))
    def test_split_build_matches_unsplit(self, split_fs, backend):
        unsplit = build_report(backend, split_fs)
        split = build_report(backend, split_fs, split_threshold=512)
        assert flat_bytes(split.index) == flat_bytes(unsplit.index)
        assert split.file_count == unsplit.file_count

    @pytest.mark.parametrize("threshold", (64, 300, 1 << 20))
    def test_thresholds_never_change_the_index(self, split_fs, threshold):
        reference = SequentialIndexer(split_fs, naive=False).build()
        split = build_report("impl2", split_fs, split_threshold=threshold)
        assert flat_bytes(split.index) == flat_bytes(reference.index)

    @pytest.mark.parametrize(
        "extractor", (CodeExtractor, lambda: TsvExtractor(columns=(1, 2)))
    )
    @pytest.mark.parametrize("backend", ("impl2", "process"))
    def test_split_equivalence_per_extractor(
        self, split_fs, backend, extractor
    ):
        unsplit = build_report(backend, split_fs, extractor=extractor())
        split = build_report(
            backend, split_fs, extractor=extractor(), split_threshold=400
        )
        assert flat_bytes(split.index) == flat_bytes(unsplit.index)

    def test_invalid_threshold_rejected(self, split_fs):
        with pytest.raises(ValueError, match="split_threshold"):
            ReplicatedJoinedIndexer(split_fs, split_threshold=0)
        with pytest.raises(ValueError, match="split_threshold"):
            ProcessReplicatedIndexer(split_fs, split_threshold=-5)

    def test_files_split_counter(self, split_fs, fresh_obs):
        build_report("impl2", split_fs, split_threshold=512)
        assert obsrec.metrics().snapshot()["extract.files_split"] == 3.0

    def test_no_split_no_counter(self, split_fs, fresh_obs):
        build_report("impl2", split_fs, split_threshold=1 << 20)
        assert "extract.files_split" not in obsrec.metrics().snapshot()


class TestChunkSpans:
    def test_threaded_trace_has_chunk_spans(self, split_fs):
        rec = obsrec.set_recorder(Recorder(enabled=True))
        try:
            ReplicatedJoinedIndexer(split_fs, split_threshold=512).build(
                ThreadConfig(2, 0, 1)
            )
            spans = obsrec.get_recorder().spans
        finally:
            obsrec.set_recorder(rec)
        chunk_spans = [s for s in spans if s.name == "extract.chunk"]
        assert chunk_spans
        assert {s.attrs["path"] for s in chunk_spans} == {
            "huge-1.txt", "huge-2.log", "huge-3.tsv",
        }

    def test_process_trace_has_chunk_spans(self, split_fs):
        rec = obsrec.set_recorder(Recorder(enabled=True))
        try:
            build_report("process", split_fs, split_threshold=512)
            spans = obsrec.get_recorder().spans
        finally:
            obsrec.set_recorder(rec)
        chunk_spans = [s for s in spans if s.name == "extract.chunk"]
        assert chunk_spans
        assert all("worker" in s.attrs for s in chunk_spans)


# -- mid-chunk faults ---------------------------------------------------


class MidChunkFaultFS:
    """Delegating wrapper whose fault fires only on ranged reads past
    offset 0 — the head probe and chunk 0 succeed, so the file *does*
    split and the fault lands mid-chunk, in whichever process reads it.
    """

    def __init__(self, inner, path, spec) -> None:
        self._inner = inner
        self._path = path
        self._spec = spec

    def read_range(self, path, offset, length):
        if path == self._path and offset > 0:
            self._spec.trigger(path)
        return read_range(self._inner, path, offset, length)

    def read_file(self, path):
        return self._inner.read_file(path)

    def list_files(self, path=""):
        return self._inner.list_files(path)

    def file_size(self, path):
        return self._inner.file_size(path)

    def exists(self, path):
        return self._inner.exists(path)

    def is_dir(self, path):
        return self._inner.is_dir(path)


class TestMidChunkFaults:
    VICTIM = "huge-1.txt"

    @pytest.mark.parametrize("backend", ("impl2", "process"))
    def test_failed_chunk_skips_the_whole_file(self, split_fs, backend):
        # No half-indexed documents: one failed chunk drops the file
        # entirely (exactly one FileFailure), and the survivors match a
        # clean build without the victim byte-for-byte.
        fs = MidChunkFaultFS(
            split_fs, self.VICTIM, FaultSpec(exc_type=PermissionError)
        )
        if backend == "process":
            report = build_report(
                backend, fs, split_threshold=512, on_error="skip",
                max_retries=1, retry_backoff=0.0,
            )
        else:
            report = ReplicatedJoinedIndexer(
                fs, split_threshold=512, on_error="skip"
            ).build(ThreadConfig(2, 0, 1))
        assert [f.path for f in report.failures] == [self.VICTIM]
        assert report.failures[0].stage == "read"

        clean = VirtualFileSystem()
        for ref in split_fs.list_files():
            if ref.path != self.VICTIM:
                clean.write_file(ref.path, split_fs.read_file(ref.path))
        reference = SequentialIndexer(clean, naive=False).build()
        assert flat_bytes(report.index) == flat_bytes(reference.index)

    @pytest.mark.parametrize("backend", ("impl2", "process"))
    def test_strict_aborts_on_mid_chunk_error(self, split_fs, backend):
        fs = MidChunkFaultFS(
            split_fs, self.VICTIM, FaultSpec(exc_type=PermissionError)
        )
        with pytest.raises(PermissionError, match="injected fault"):
            if backend == "process":
                build_report(backend, fs, split_threshold=512)
            else:
                ReplicatedJoinedIndexer(fs, split_threshold=512).build(
                    ThreadConfig(2, 0, 1)
                )

    def test_chunk_crash_recovers_via_in_parent_fallback(self, split_fs):
        # parent_action="pass": the crash fires only inside worker
        # processes.  The ladder retries the chunk, keeps crashing, and
        # the in-parent fallback extracts it — the build must recover
        # every file and match the clean sequential index exactly.
        fs = MidChunkFaultFS(
            split_fs,
            self.VICTIM,
            FaultSpec(action="crash", parent_action="pass"),
        )
        report = build_report(
            "process", fs, split_threshold=512, on_error="skip",
            max_retries=1, retry_backoff=0.0,
        )
        assert report.failures == []
        assert report.retries >= 1
        reference = SequentialIndexer(split_fs, naive=False).build()
        assert flat_bytes(report.index) == flat_bytes(reference.index)

    def test_chunk_hang_times_out_and_recovers(self, split_fs):
        fs = MidChunkFaultFS(
            split_fs,
            self.VICTIM,
            FaultSpec(action="hang", delay=30.0, parent_action="pass"),
        )
        report = build_report(
            "process", fs, split_threshold=512, on_error="skip",
            max_retries=1, retry_backoff=0.0, batch_timeout=1.0,
        )
        assert report.failures == []
        reference = SequentialIndexer(split_fs, naive=False).build()
        assert flat_bytes(report.index) == flat_bytes(reference.index)

    def test_poisoned_path_never_splits_but_still_fails_cleanly(
        self, split_fs
    ):
        # A path whose *every* read fails can't even head-probe; it is
        # left whole and walks the normal per-file skip path.
        fs = FaultInjectingFileSystem(
            split_fs, {self.VICTIM: FaultSpec(exc_type=PermissionError)}
        )
        report = build_report(
            "process", fs, split_threshold=512, on_error="skip",
            max_retries=1, retry_backoff=0.0,
        )
        assert [f.path for f in report.failures] == [self.VICTIM]
