"""Tests for the threaded engine: configs, sequential baseline, and the
three parallel implementations."""

import pytest

from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.engine.config import enumerate_configs
from repro.engine.results import checked_replica_paths
from repro.engine.runner import measure_stage_times
from repro.index import MultiIndex


class TestThreadConfig:
    def test_tuple_round_trip(self):
        config = ThreadConfig(3, 2, 1)
        assert config.as_tuple() == (3, 2, 1)
        assert str(config) == "(3, 2, 1)"

    def test_requires_extractor(self):
        with pytest.raises(ValueError):
            ThreadConfig(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ThreadConfig(1, -1, 0)

    def test_replica_count_inline(self):
        assert ThreadConfig(4, 0, 0).replica_count == 4

    def test_replica_count_buffered(self):
        assert ThreadConfig(4, 2, 0).replica_count == 2

    def test_uses_buffer(self):
        assert ThreadConfig(1, 1, 0).uses_buffer
        assert not ThreadConfig(1, 0, 0).uses_buffer

    def test_total_threads(self):
        assert ThreadConfig(3, 2, 1).total_threads == 6

    def test_impl1_rejects_joiners(self):
        with pytest.raises(ValueError):
            ThreadConfig(3, 1, 1).validate_for(Implementation.SHARED_LOCKED)

    def test_impl2_requires_joiner(self):
        with pytest.raises(ValueError):
            ThreadConfig(3, 2, 0).validate_for(Implementation.REPLICATED_JOINED)

    def test_impl3_rejects_joiners(self):
        with pytest.raises(ValueError):
            ThreadConfig(3, 2, 1).validate_for(Implementation.REPLICATED_UNJOINED)

    def test_replicated_needs_two_replicas(self):
        # y=1 (or x=1, y=0) degenerates to a single index: not replication.
        with pytest.raises(ValueError):
            ThreadConfig(3, 1, 1).validate_for(Implementation.REPLICATED_JOINED)
        with pytest.raises(ValueError):
            ThreadConfig(1, 0, 0).validate_for(Implementation.REPLICATED_UNJOINED)

    def test_impl1_allows_single_updater(self):
        ThreadConfig(3, 1, 0).validate_for(Implementation.SHARED_LOCKED)

    def test_paper_configs_are_valid(self):
        ThreadConfig(3, 1, 0).validate_for(Implementation.SHARED_LOCKED)
        ThreadConfig(3, 5, 1).validate_for(Implementation.REPLICATED_JOINED)
        ThreadConfig(9, 4, 0).validate_for(Implementation.REPLICATED_UNJOINED)

    def test_enumerate_all_valid(self):
        for implementation in Implementation:
            for config in enumerate_configs(implementation, 4, 3, 2):
                config.validate_for(implementation)  # must not raise

    def test_enumerate_joiner_ranges(self):
        impl3 = list(enumerate_configs(Implementation.REPLICATED_UNJOINED, 3, 2))
        assert all(c.joiners == 0 for c in impl3)
        impl2 = list(enumerate_configs(Implementation.REPLICATED_JOINED, 3, 2))
        assert all(c.joiners >= 1 for c in impl2)

    def test_implementation_names(self):
        assert Implementation.SHARED_LOCKED.paper_name == "Implementation 1"
        assert Implementation.REPLICATED_JOINED.joins
        assert not Implementation.REPLICATED_UNJOINED.joins


class TestSequentialIndexer:
    def test_naive_build(self, tiny_fs, tiny_reference_index):
        report = SequentialIndexer(tiny_fs).build()
        assert report.term_count == len(tiny_reference_index)
        for term, paths in list(tiny_reference_index.items())[:20]:
            assert set(report.lookup(term)) == paths

    def test_en_bloc_equals_naive(self, tiny_fs):
        naive = SequentialIndexer(tiny_fs, naive=True).build()
        en_bloc = SequentialIndexer(tiny_fs, naive=False).build()
        assert naive.index == en_bloc.index

    def test_report_counts(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        assert report.file_count == len(list(tiny_fs.list_files()))
        assert report.posting_count == report.index.posting_count
        assert report.wall_time > 0

    def test_stage_timings_recorded(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        assert report.timings.extraction > 0
        assert report.timings.update > 0
        assert report.timings.total <= report.wall_time * 1.5


@pytest.mark.parametrize(
    "implementation,config",
    [
        (Implementation.SHARED_LOCKED, ThreadConfig(1, 0, 0)),
        (Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 0)),
        (Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)),
        (Implementation.SHARED_LOCKED, ThreadConfig(2, 3, 0)),
        (Implementation.REPLICATED_JOINED, ThreadConfig(2, 0, 1)),
        (Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)),
        (Implementation.REPLICATED_JOINED, ThreadConfig(3, 4, 2)),
        (Implementation.REPLICATED_UNJOINED, ThreadConfig(2, 0, 0)),
        (Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)),
        (Implementation.REPLICATED_UNJOINED, ThreadConfig(4, 3, 0)),
    ],
)
class TestParallelImplementations:
    def test_matches_reference(
        self, implementation, config, tiny_fs, tiny_reference_index
    ):
        report = IndexGenerator(tiny_fs).build(implementation, config)
        assert report.term_count == len(tiny_reference_index)
        for term, paths in list(tiny_reference_index.items())[:15]:
            assert set(report.lookup(term)) == paths

    def test_posting_count_matches_reference(
        self, implementation, config, tiny_fs, tiny_reference_index
    ):
        report = IndexGenerator(tiny_fs).build(implementation, config)
        expected = sum(len(paths) for paths in tiny_reference_index.values())
        assert report.posting_count == expected


class TestImplementationSpecifics:
    def test_impl3_returns_multi_index(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert isinstance(report.index, MultiIndex)
        assert len(report.index.replicas) == 2

    def test_impl3_inline_replicas_per_extractor(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(4, 0, 0)
        )
        assert len(report.index.replicas) == 4

    def test_impl3_replicas_disjoint(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert checked_replica_paths(report.index.replicas) is None

    def test_impl2_join_time_recorded(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)
        )
        assert report.timings.join > 0

    def test_invalid_config_rejected(self, tiny_fs):
        with pytest.raises(ValueError):
            IndexGenerator(tiny_fs).build(
                Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 2)
            )

    def test_speedup_over(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.SHARED_LOCKED, ThreadConfig(2, 0, 0)
        )
        assert report.speedup_over(report.wall_time * 2) == pytest.approx(2.0)

    def test_summary_mentions_config(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.SHARED_LOCKED, ThreadConfig(2, 1, 0)
        )
        assert "(2, 1, 0)" in report.summary()


class TestStageTimeMeasurement:
    def test_all_stages_positive(self, tiny_fs):
        times = measure_stage_times(tiny_fs)
        assert times.filename_generation > 0
        assert times.read_files > 0
        assert times.read_and_extract > 0
        assert times.index_update > 0

    def test_extract_costs_more_than_read(self, tiny_fs):
        times = measure_stage_times(tiny_fs)
        # Extraction includes tokenization + dedup; reading is a byte loop.
        # Both read every byte, so extract should not be dramatically
        # cheaper (they are of the same order of magnitude).
        assert times.read_and_extract > times.read_files * 0.2


class TestWorkDistributionIntegration:
    def test_size_balanced_strategy_same_index(self, tiny_fs, tiny_reference_index):
        from repro.distribute import SizeBalancedStrategy

        report = IndexGenerator(tiny_fs, strategy=SizeBalancedStrategy()).build(
            Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 0)
        )
        assert report.term_count == len(tiny_reference_index)
