"""Tests for the workload model, cost model, batching and pipelines."""

import pytest

from repro.corpus.profiles import PAPER_PROFILE, TINY_PROFILE
from repro.engine.config import Implementation, ThreadConfig
from repro.platforms import QUAD_CORE
from repro.simengine import CostModel, SimPipeline, Workload, WorkloadSpec
from repro.simengine.batches import make_batches
from repro.simengine.workload import FileWork


class TestFileWork:
    def test_valid(self):
        work = FileWork("f", 100, 20, 10)
        assert work.unique_terms == 10

    def test_unique_cannot_exceed_terms(self):
        with pytest.raises(ValueError):
            FileWork("f", 100, 5, 10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FileWork("f", -1, 0, 0)


class TestWorkloadFromCorpus:
    def test_counts_match_fs(self, tiny_corpus, tiny_workload):
        assert len(tiny_workload) == len(list(tiny_corpus.fs.list_files()))

    def test_bytes_match_fs(self, tiny_corpus, tiny_workload):
        assert tiny_workload.total_bytes == tiny_corpus.stats().total_bytes

    def test_unique_never_exceeds_terms(self, tiny_workload):
        for work in tiny_workload.files:
            assert work.unique_terms <= work.term_count


class TestSynthesizedWorkload:
    @pytest.fixture(scope="class")
    def paper_workload(self):
        return Workload.synthesize()

    def test_paper_scale(self, paper_workload):
        assert len(paper_workload) == PAPER_PROFILE.file_count
        assert paper_workload.total_bytes == pytest.approx(
            PAPER_PROFILE.total_bytes, rel=0.02
        )

    def test_five_large_files(self, paper_workload):
        large = sorted(paper_workload.files, key=lambda f: -f.size_bytes)[:5]
        assert all(f.path.startswith("big") for f in large)

    def test_deterministic(self):
        spec = WorkloadSpec(profile=TINY_PROFILE)
        a = Workload.synthesize(spec)
        b = Workload.synthesize(spec)
        assert [(f.path, f.size_bytes, f.unique_terms) for f in a.files] == [
            (f.path, f.size_bytes, f.unique_terms) for f in b.files
        ]

    def test_unique_terms_plausible(self, paper_workload):
        # Zipfian text: distinct terms well below occurrences for big files.
        big = max(paper_workload.files, key=lambda f: f.size_bytes)
        assert big.unique_terms < big.term_count * 0.5
        assert big.unique_terms <= PAPER_PROFILE.vocabulary_size

    def test_synthetic_close_to_exact_on_same_profile(self, tiny_workload):
        synthetic = Workload.synthesize(WorkloadSpec(profile=TINY_PROFILE))
        assert synthetic.total_bytes == pytest.approx(
            tiny_workload.total_bytes, rel=0.2
        )
        assert synthetic.total_terms == pytest.approx(
            tiny_workload.total_terms, rel=0.3
        )

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload([])


class TestCostModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CostModel(QUAD_CORE, Workload.synthesize())

    def test_total_scan_cost_matches_platform(self, model):
        total = sum(model.scan_cpu(f) for f in model.workload.files)
        assert total == pytest.approx(QUAD_CORE.scan_cpu_s, rel=1e-6)

    def test_total_insert_cost_matches_platform(self, model):
        total = sum(model.insert_private_cpu(f) for f in model.workload.files)
        assert total == pytest.approx(QUAD_CORE.update_total_s, rel=1e-6)

    def test_total_naive_cost_matches_platform(self, model):
        total = sum(model.naive_update_cpu(f) for f in model.workload.files)
        assert total == pytest.approx(QUAD_CORE.naive_update_s, rel=1e-6)

    def test_critical_inflated_by_sharers(self, model):
        work = model.workload.files[0]
        alone = model.insert_critical_cpu(work, sharers=1)
        crowded = model.insert_critical_cpu(work, sharers=5)
        assert crowded == pytest.approx(
            alone * QUAD_CORE.coherence_multiplier(5)
        )

    def test_sequential_read_close_to_paper(self, model):
        # seek + transfer + read-CPU should land on Table 1's read time;
        # the closed form here excludes the CPU share.
        assert model.sequential_read_s() < 77.0

    def test_join_cost_scales_linearly(self, model):
        assert model.join_cpu(2e6) == pytest.approx(model.join_cpu(1e6) * 2)


class TestBatches:
    def test_all_files_covered(self, tiny_workload):
        model = CostModel(QUAD_CORE, tiny_workload)
        batches = make_batches(tiny_workload.files, model, 10)
        assert sum(b.file_count for b in batches) == len(tiny_workload)

    def test_demands_preserved(self, tiny_workload):
        model = CostModel(QUAD_CORE, tiny_workload)
        batches = make_batches(tiny_workload.files, model, 7)
        assert sum(b.disk_bytes for b in batches) == pytest.approx(
            tiny_workload.total_bytes
        )
        assert sum(b.unique_pairs for b in batches) == (
            tiny_workload.total_unique_pairs
        )

    def test_batch_count_bounded(self, tiny_workload):
        model = CostModel(QUAD_CORE, tiny_workload)
        assert len(make_batches(tiny_workload.files, model, 10)) <= 10

    def test_empty_files(self, tiny_workload):
        model = CostModel(QUAD_CORE, tiny_workload)
        assert make_batches([], model, 10) == []

    def test_invalid_target(self, tiny_workload):
        model = CostModel(QUAD_CORE, tiny_workload)
        with pytest.raises(ValueError):
            make_batches(tiny_workload.files, model, 0)


class TestSimPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return SimPipeline(QUAD_CORE, Workload.synthesize())

    def test_stage_times_match_table1(self, pipeline):
        times = pipeline.stage_times()
        assert times.filename_generation == pytest.approx(5.0)
        assert times.read_files == pytest.approx(77.0, rel=0.02)
        assert times.read_and_extract == pytest.approx(88.0, rel=0.02)
        assert times.index_update == pytest.approx(22.0, rel=0.02)

    def test_sequential_matches_paper_total(self, pipeline):
        assert pipeline.run_sequential().total_s == pytest.approx(220.0, rel=0.02)

    def test_en_bloc_sequential_faster_than_naive(self, pipeline):
        naive = pipeline.run_sequential(naive=True).total_s
        en_bloc = pipeline.run_sequential(naive=False).total_s
        assert en_bloc < naive

    def test_parallel_beats_sequential(self, pipeline):
        sequential = pipeline.run_sequential().total_s
        parallel = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert parallel.total_s < sequential

    def test_impl1_reports_lock_statistics(self, pipeline):
        result = pipeline.run(Implementation.SHARED_LOCKED, ThreadConfig(3, 2, 0))
        assert result.lock_acquires > 0

    def test_impl2_join_time_positive(self, pipeline):
        result = pipeline.run(Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1))
        assert result.join_s > 0

    def test_impl3_no_join_time(self, pipeline):
        result = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert result.join_s == pytest.approx(0.0, abs=1e-6)

    def test_tree_join_not_slower_than_single(self, pipeline):
        single = pipeline.run(
            Implementation.REPLICATED_JOINED, ThreadConfig(3, 4, 1)
        )
        tree = pipeline.run(Implementation.REPLICATED_JOINED, ThreadConfig(3, 4, 2))
        assert tree.total_s <= single.total_s + 1e-6

    def test_deterministic(self, pipeline):
        a = pipeline.run(Implementation.SHARED_LOCKED, ThreadConfig(4, 2, 0))
        b = pipeline.run(Implementation.SHARED_LOCKED, ThreadConfig(4, 2, 0))
        assert a.total_s == b.total_s

    def test_invalid_config_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.run(Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 1))

    def test_utilizations_bounded(self, pipeline):
        result = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(4, 2, 0)
        )
        assert 0.0 < result.disk_utilization <= 1.0
        assert 0.0 < result.cpu_utilization <= 1.0

    def test_speedup_over(self, pipeline):
        result = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert result.speedup_over(220.0) == pytest.approx(220.0 / result.total_s)

    def test_summary_contains_platform(self, pipeline):
        result = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert "quad-core" in result.summary()

    def test_more_extractors_hit_thrash(self, pipeline):
        few = pipeline.run(Implementation.REPLICATED_UNJOINED, ThreadConfig(5, 3, 0))
        many = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(12, 3, 0)
        )
        # Past the disk's parallel headroom, more streams cost seeks.
        assert many.total_s >= few.total_s
