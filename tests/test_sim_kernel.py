"""Tests for the discrete-event kernel and its resources."""

import pytest

from repro.sim import (
    BUFFER_CLOSED,
    Acquire,
    Close,
    DeadlockError,
    Delay,
    Get,
    Kernel,
    Put,
    Release,
    SimulationError,
    Use,
    WaitBarrier,
)
from repro.sim.process import ProcessState
from repro.sim.resources import FairShareResource, SimBarrier, SimBuffer, SimLock


class TestDelayAndCompletion:
    def test_single_delay(self):
        kernel = Kernel()

        def process():
            yield Delay(2.5)

        kernel.spawn("p", process())
        assert kernel.run() == pytest.approx(2.5)

    def test_sequential_delays_accumulate(self):
        kernel = Kernel()

        def process():
            yield Delay(1.0)
            yield Delay(2.0)

        kernel.spawn("p", process())
        assert kernel.run() == pytest.approx(3.0)

    def test_parallel_delays_overlap(self):
        kernel = Kernel()

        def process(duration):
            yield Delay(duration)

        kernel.spawn("a", process(3.0))
        kernel.spawn("b", process(1.0))
        assert kernel.run() == pytest.approx(3.0)

    def test_zero_delay_is_free(self):
        kernel = Kernel()

        def process():
            yield Delay(0.0)

        kernel.spawn("p", process())
        assert kernel.run() == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)

    def test_empty_run(self):
        assert Kernel().run() == 0.0

    def test_finish_times_recorded(self):
        kernel = Kernel()

        def process(duration):
            yield Delay(duration)

        p1 = kernel.spawn("a", process(1.0))
        p2 = kernel.spawn("b", process(2.0))
        kernel.run()
        assert p1.finish_time == pytest.approx(1.0)
        assert p2.finish_time == pytest.approx(2.0)
        assert p1.state is ProcessState.FINISHED


class TestFairShareCpu:
    def test_single_job_full_speed(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=4.0, per_job_cap=1.0)

        def process():
            yield Use(cpu, 2.0)

        kernel.spawn("p", process())
        assert kernel.run() == pytest.approx(2.0)

    def test_jobs_up_to_cores_run_at_full_speed(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=4.0, per_job_cap=1.0)

        def process():
            yield Use(cpu, 2.0)

        for i in range(4):
            kernel.spawn(f"p{i}", process())
        assert kernel.run() == pytest.approx(2.0)

    def test_oversubscription_time_slices(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=2.0, per_job_cap=1.0)

        def process():
            yield Use(cpu, 1.0)

        for i in range(4):  # 4 threads on 2 cores -> half speed each
            kernel.spawn(f"p{i}", process())
        assert kernel.run() == pytest.approx(2.0)

    def test_unequal_demands_complete_in_order(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=1.0, per_job_cap=1.0)

        def process(units):
            yield Use(cpu, units)

        short = kernel.spawn("short", process(1.0))
        long = kernel.spawn("long", process(3.0))
        kernel.run()
        # Both share the single core: short finishes at 2 (half speed for
        # 1 unit), then long runs alone.
        assert short.finish_time == pytest.approx(2.0)
        assert long.finish_time == pytest.approx(4.0)

    def test_work_conservation(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=3.0, per_job_cap=1.0)

        def process(units):
            yield Use(cpu, units)

        demands = [1.0, 2.0, 0.5, 3.0]
        for i, demand in enumerate(demands):
            kernel.spawn(f"p{i}", process(demand))
        total = kernel.run()
        assert cpu.work_done == pytest.approx(sum(demands))
        assert cpu.utilization(total) <= 1.0 + 1e-9

    def test_zero_use_is_free(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=1.0)

        def process():
            yield Use(cpu, 0.0)

        kernel.spawn("p", process())
        assert kernel.run() == 0.0

    def test_tiny_residual_demand_does_not_stall(self):
        # Regression test: a leftover demand below one float tick of
        # virtual time used to loop the kernel forever.
        kernel = Kernel()
        disk = kernel.resource("disk", total_rate=2.3e7, per_job_cap=1.2e7)

        def process():
            for _ in range(500):
                yield Use(disk, 17_000.0)
                yield Delay(1e-4)

        kernel.spawn("p", process())
        kernel.run()  # must terminate


class TestFairShareDisk:
    def test_per_job_cap_limits_single_stream(self):
        kernel = Kernel()
        disk = kernel.resource("disk", total_rate=20.0, per_job_cap=10.0)

        def process():
            yield Use(disk, 10.0)

        kernel.spawn("p", process())
        assert kernel.run() == pytest.approx(1.0)  # capped at 10/s

    def test_aggregate_shared_among_streams(self):
        kernel = Kernel()
        disk = kernel.resource("disk", total_rate=20.0, per_job_cap=15.0)

        def process():
            yield Use(disk, 20.0)

        kernel.spawn("a", process())
        kernel.spawn("b", process())
        # Two streams share 20/s -> 10/s each -> 2s.
        assert kernel.run() == pytest.approx(2.0)

    def test_peak_concurrency_tracked(self):
        kernel = Kernel()
        disk = kernel.resource("disk", total_rate=10.0)

        def process():
            yield Use(disk, 1.0)

        for i in range(3):
            kernel.spawn(f"p{i}", process())
        kernel.run()
        assert disk.peak_concurrency == 3

    def test_invalid_resource_parameters(self):
        with pytest.raises(ValueError):
            FairShareResource("bad", total_rate=0.0)
        with pytest.raises(ValueError):
            FairShareResource("bad", total_rate=1.0, per_job_cap=0.0)

    def test_double_enqueue_rejected(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", 1.0)
        process = kernel.spawn("p", iter(()))
        cpu.add_job(process, 1.0)
        with pytest.raises(SimulationError):
            cpu.add_job(process, 1.0)


class TestLocks:
    def test_serializes_critical_sections(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=4.0, per_job_cap=1.0)
        lock = SimLock()

        def process():
            yield Acquire(lock)
            yield Use(cpu, 1.0)
            yield Release(lock)

        for i in range(3):
            kernel.spawn(f"p{i}", process())
        # Plenty of cores, but the lock serializes: 3 x 1s.
        assert kernel.run() == pytest.approx(3.0)

    def test_contention_statistics(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=4.0, per_job_cap=1.0)
        lock = SimLock()

        def process():
            yield Acquire(lock)
            yield Use(cpu, 1.0)
            yield Release(lock)

        for i in range(3):
            kernel.spawn(f"p{i}", process())
        kernel.run()
        assert lock.acquires == 3
        assert lock.contended_acquires == 2
        # Waiters waited 1s and 2s respectively.
        assert lock.total_wait_time == pytest.approx(3.0)
        assert lock.max_queue_length == 2

    def test_fifo_order(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=4.0, per_job_cap=1.0)
        lock = SimLock()
        order = []

        def process(name, start_delay):
            yield Delay(start_delay)
            yield Acquire(lock)
            order.append(name)
            yield Use(cpu, 1.0)
            yield Release(lock)

        kernel.spawn("first", process("first", 0.0))
        kernel.spawn("second", process("second", 0.1))
        kernel.spawn("third", process("third", 0.2))
        kernel.run()
        assert order == ["first", "second", "third"]

    def test_release_without_hold_rejected(self):
        kernel = Kernel()
        lock = SimLock()

        def process():
            yield Release(lock)

        kernel.spawn("p", process())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_blocked_time_accounted(self):
        kernel = Kernel()
        cpu = kernel.resource("cpu", total_rate=4.0, per_job_cap=1.0)
        lock = SimLock()

        def holder():
            yield Acquire(lock)
            yield Use(cpu, 2.0)
            yield Release(lock)

        def waiter():
            yield Delay(0.5)
            yield Acquire(lock)
            yield Release(lock)

        kernel.spawn("holder", holder())
        blocked = kernel.spawn("waiter", waiter())
        kernel.run()
        assert blocked.blocked_time == pytest.approx(2.0)  # 0.5 .. 2.0 + delay 0.5


class TestBuffers:
    def test_put_get_round_trip(self):
        kernel = Kernel()
        buffer = SimBuffer(capacity=4)
        received = []

        def producer():
            for i in range(3):
                yield Put(buffer, i)
            yield Close(buffer)

        def consumer():
            while True:
                item = yield Get(buffer)
                if item is BUFFER_CLOSED:
                    return
                received.append(item)

        kernel.spawn("producer", producer())
        kernel.spawn("consumer", consumer())
        kernel.run()
        assert received == [0, 1, 2]

    def test_backpressure_blocks_producer(self):
        kernel = Kernel()
        buffer = SimBuffer(capacity=1)

        def producer():
            yield Put(buffer, "a")
            yield Put(buffer, "b")  # blocks until the consumer gets "a"

        def consumer():
            yield Delay(5.0)
            yield Get(buffer)
            yield Get(buffer)

        producer_process = kernel.spawn("producer", producer())
        kernel.spawn("consumer", consumer())
        kernel.run()
        assert producer_process.finish_time == pytest.approx(5.0)
        assert producer_process.blocked_time == pytest.approx(5.0)

    def test_close_wakes_blocked_getters(self):
        kernel = Kernel()
        buffer = SimBuffer()
        outcomes = []

        def consumer():
            item = yield Get(buffer)
            outcomes.append(item)

        def closer():
            yield Delay(1.0)
            yield Close(buffer)

        kernel.spawn("consumer", consumer())
        kernel.spawn("closer", closer())
        kernel.run()
        assert outcomes == [BUFFER_CLOSED]

    def test_put_after_close_rejected(self):
        kernel = Kernel()
        buffer = SimBuffer()

        def process():
            yield Close(buffer)
            yield Put(buffer, 1)

        kernel.spawn("p", process())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_close_with_blocked_putters_rejected(self):
        kernel = Kernel()
        buffer = SimBuffer(capacity=1)

        def producer():
            yield Put(buffer, 1)
            yield Put(buffer, 2)  # blocks

        def closer():
            yield Delay(1.0)
            yield Close(buffer)

        kernel.spawn("producer", producer())
        kernel.spawn("closer", closer())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_statistics(self):
        kernel = Kernel()
        buffer = SimBuffer(capacity=8)

        def producer():
            for i in range(5):
                yield Put(buffer, i)
            yield Close(buffer)

        def consumer():
            yield Delay(1.0)
            while True:
                item = yield Get(buffer)
                if item is BUFFER_CLOSED:
                    return

        kernel.spawn("producer", producer())
        kernel.spawn("consumer", consumer())
        kernel.run()
        assert buffer.puts == 5
        assert buffer.peak_occupancy == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SimBuffer(capacity=0)


class TestBarriers:
    def test_all_parties_released_together(self):
        kernel = Kernel()
        barrier = SimBarrier(3)

        def process(delay):
            yield Delay(delay)
            yield WaitBarrier(barrier)

        processes = [
            kernel.spawn(f"p{i}", process(float(i))) for i in range(3)
        ]
        kernel.run()
        # All finish when the slowest (delay=2) arrives.
        for process in processes:
            assert process.finish_time == pytest.approx(2.0)
        assert barrier.generations == 1

    def test_reusable(self):
        kernel = Kernel()
        barrier = SimBarrier(2)

        def process():
            yield WaitBarrier(barrier)
            yield WaitBarrier(barrier)

        kernel.spawn("a", process())
        kernel.spawn("b", process())
        kernel.run()
        assert barrier.generations == 2

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(0)


class TestDeadlockDetection:
    def test_lock_never_released(self):
        kernel = Kernel()
        lock = SimLock()

        def holder():
            yield Acquire(lock)
            # never releases

        def waiter():
            yield Acquire(lock)

        kernel.spawn("holder", holder())
        kernel.spawn("waiter", waiter())
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        assert "waiter" in str(excinfo.value)

    def test_barrier_short_of_parties(self):
        kernel = Kernel()
        barrier = SimBarrier(2)

        def process():
            yield WaitBarrier(barrier)

        kernel.spawn("alone", process())
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_get_on_never_filled_buffer(self):
        kernel = Kernel()
        buffer = SimBuffer()

        def consumer():
            yield Get(buffer)

        kernel.spawn("consumer", consumer())
        with pytest.raises(DeadlockError):
            kernel.run()


class TestRunUntil:
    def test_stops_at_horizon(self):
        kernel = Kernel()

        def process():
            yield Delay(100.0)

        kernel.spawn("p", process())
        assert kernel.run(until=10.0) == pytest.approx(10.0)
        assert kernel.unfinished

    def test_unknown_request_rejected(self):
        kernel = Kernel()

        def process():
            yield "not a request"

        kernel.spawn("p", process())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_determinism(self):
        def build_and_run():
            kernel = Kernel()
            cpu = kernel.resource("cpu", 2.0, 1.0)
            lock = SimLock()

            def process(units):
                yield Use(cpu, units)
                yield Acquire(lock)
                yield Use(cpu, 0.1)
                yield Release(lock)

            for i in range(5):
                kernel.spawn(f"p{i}", process(0.3 * (i + 1)))
            return kernel.run()

        assert build_and_run() == build_and_run()
