"""The ``serve`` subcommand and the uniform observability flags.

Drives the full serving path through the CLI: build (or open) an index
over a real directory, answer a query stream from a file, refresh under
``--watch``, and emit a valid Chrome trace.  Also pins the argparse
contract: ``--watch`` exists only on ``serve``, so every other
subcommand rejects it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.obs import recorder as obsrec


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    destination = str(tmp_path_factory.mktemp("serve") / "corpus")
    assert main(["generate-corpus", destination, "--scale", "0.001"]) == 0
    return destination


@pytest.fixture(autouse=True)
def fresh_obs():
    """Isolate the global recorder the --trace-out/--stats flags enable."""
    from repro.obs.recorder import Recorder

    previous = obsrec.set_recorder(Recorder(enabled=False))
    try:
        yield
    finally:
        obsrec.set_recorder(previous)


def query_file(tmp_path, lines):
    path = tmp_path / "queries.txt"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


def a_term(corpus_dir):
    """Some term actually present in the corpus."""
    from repro.engine import SequentialIndexer
    from repro.fsmodel import OsFileSystem

    report = SequentialIndexer(OsFileSystem(corpus_dir)).build()
    return sorted(report.index.terms())[0]


class TestServe:
    def test_serves_queries_from_file(self, corpus_dir, tmp_path, capsys):
        term = a_term(corpus_dir)
        queries = query_file(tmp_path, ["# warmup comment", term, "", "zz9"])
        assert main(["serve", corpus_dir, "--queries", queries]) == 0
        captured = capsys.readouterr()
        assert f"[gen 0] {term} ->" in captured.out
        assert "[gen 0] zz9 -> 0 file(s)" in captured.out
        assert "served 2 query(ies)" in captured.err

    def test_unparsable_query_reported_not_fatal(
        self, corpus_dir, tmp_path, capsys
    ):
        queries = query_file(tmp_path, ["AND AND", "zz9"])
        assert main(["serve", corpus_dir, "--queries", queries]) == 1
        captured = capsys.readouterr()
        assert "error: AND AND" in captured.err
        assert "[gen 0] zz9" in captured.out  # the stream continued

    def test_serve_from_saved_index(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "prebuilt.ridx")
        assert main(["index", corpus_dir, "-i", "2", "-x", "2", "-y", "2",
                     "-z", "1", "--save", save]) == 0
        capsys.readouterr()
        queries = query_file(tmp_path, ["zz9"])
        assert main(["serve", corpus_dir, "--index", save,
                     "--queries", queries]) == 0
        assert "[gen 0] zz9" in capsys.readouterr().out

    def test_watch_picks_up_new_files(self, corpus_dir, tmp_path, capsys):
        import shutil

        live = str(tmp_path / "live")
        shutil.copytree(corpus_dir, live)
        # enough queries that the 10ms watch interval fires mid-stream
        queries = query_file(tmp_path, ["xyzzyserve"] * 200)
        with open(os.path.join(live, "added-later.txt"), "w") as fh:
            fh.write("xyzzyserve appears")
        assert main(["serve", live, "--watch", "0.01",
                     "--queries", queries]) == 0
        out = capsys.readouterr().out
        # before the first watch tick the term is unknown; afterwards
        # queries find it — both phases answered, neither torn
        assert "added-later.txt" not in out.splitlines()[0]
        assert "added-later.txt" in out

    def test_trace_out_is_valid_chrome_trace(
        self, corpus_dir, tmp_path, capsys
    ):
        trace = str(tmp_path / "serve-trace.json")
        queries = query_file(tmp_path, ["zz9", "zz9"])
        assert main(["serve", corpus_dir, "--queries", queries,
                     "--trace-out", trace]) == 0
        from repro.obs import validate_trace_file

        problems = validate_trace_file(trace)
        assert problems == []
        with open(trace, "r", encoding="utf-8") as fh:
            events = json.load(fh)["traceEvents"]
        names = {event["name"] for event in events}
        assert any("service.query" in name for name in names)

    def test_argument_validation(self, corpus_dir, tmp_path, capsys):
        assert main(["serve", corpus_dir, "--watch", "0",
                     "--queries", query_file(tmp_path, ["x"])]) == 2
        assert main(["serve", corpus_dir, "--workers", "0",
                     "--queries", query_file(tmp_path, ["x"])]) == 2
        assert main(["serve", corpus_dir, "--batch-window", "-0.1",
                     "--queries", query_file(tmp_path, ["x"])]) == 2


class TestServeAsync:
    def test_async_answers_match_sync_and_coalesces(
        self, corpus_dir, tmp_path, capsys
    ):
        term = a_term(corpus_dir)
        queries = query_file(tmp_path, [term, term, term, "zz9"])
        assert main(["serve", corpus_dir, "--queries", queries]) == 0
        sync_out = capsys.readouterr().out
        assert main(["serve", corpus_dir, "--async", "--batch-window",
                     "0.01", "--queries", queries]) == 0
        captured = capsys.readouterr()
        # Result-transparent: the async stream prints the same answers
        # in the same order as the plain service.
        assert captured.out == sync_out
        assert "-- frontend:" in captured.err
        # 3 identical in-flight queries coalesce onto <= 2 evaluations.
        coalesced = int(
            captured.err.split("coalesced")[0].split()[-1]
        )
        assert coalesced >= 1

    def test_no_single_flight_evaluates_everything(
        self, corpus_dir, tmp_path, capsys
    ):
        term = a_term(corpus_dir)
        queries = query_file(tmp_path, [term, term, term])
        assert main(["serve", corpus_dir, "--async", "--no-single-flight",
                     "--queries", queries]) == 0
        err = capsys.readouterr().err
        assert "0 coalesced" in err
        assert "3 evaluation(s)" in err

    def test_async_parse_error_reported_not_fatal(
        self, corpus_dir, tmp_path, capsys
    ):
        queries = query_file(tmp_path, ["AND AND", "zz9"])
        assert main(["serve", corpus_dir, "--async",
                     "--queries", queries]) == 1
        captured = capsys.readouterr()
        assert "error: AND AND" in captured.err
        assert "[gen 0] zz9" in captured.out  # the stream continued


class TestServeSharded:
    def test_sharded_answers_match_the_single_service(
        self, corpus_dir, tmp_path, capsys
    ):
        term = a_term(corpus_dir)
        queries = query_file(tmp_path, [term, "zz9"])
        assert main(["serve", corpus_dir, "--queries", queries]) == 0
        single_out = capsys.readouterr().out
        assert main(["serve", corpus_dir, "--shards", "3",
                     "--replicas", "2", "--queries", queries]) == 0
        captured = capsys.readouterr()
        # the differential gate, through the CLI: byte-identical output
        assert captured.out == single_out
        assert "across 3 shard(s) x 2 replica(s)" in captured.err
        assert "shards 3/3 alive" in captured.err

    def test_sharded_bm25_needs_no_ondisk(self, corpus_dir, tmp_path,
                                          capsys):
        term = a_term(corpus_dir)
        queries = query_file(tmp_path, [term])
        assert main(["serve", corpus_dir, "--shards", "2",
                     "--rank", "bm25", "--topk", "3",
                     "--queries", queries]) == 0
        out = capsys.readouterr().out
        assert f"[gen 0] {term} ->" in out

    def test_sharded_async_frontend_composes(self, corpus_dir, tmp_path,
                                             capsys):
        term = a_term(corpus_dir)
        queries = query_file(tmp_path, [term, term, term])
        assert main(["serve", corpus_dir, "--shards", "2", "--async",
                     "--batch-window", "0.01",
                     "--queries", queries]) == 0
        err = capsys.readouterr().err
        assert "-- frontend:" in err
        assert "shards 2/2 alive" in err

    def test_sharded_argument_validation(self, corpus_dir, tmp_path,
                                         capsys):
        queries = query_file(tmp_path, ["x"])
        # incompatible serving modes are rejected up front
        assert main(["serve", corpus_dir, "--shards", "1",
                     "--queries", queries]) == 2
        assert main(["serve", corpus_dir, "--shards", "2",
                     "--replicas", "0", "--queries", queries]) == 2
        assert main(["serve", corpus_dir, "--shards", "2", "--watch",
                     "0.5", "--queries", queries]) == 2
        assert main(["serve", corpus_dir, "--shards", "2", "--ondisk",
                     "--index", "x.ridx2", "--queries", queries]) == 2
        assert main(["serve", corpus_dir, "--shards", "2",
                     "--compact-every", "1", "--queries", queries]) == 2


class TestWatchOnlyOnServe:
    @pytest.mark.parametrize("argv", [
        ["index", "somedir", "--watch", "1"],
        ["search", "some.idx", "q", "--watch", "1"],
        ["refresh", "somedir", "--index", "i", "--state", "s",
         "--watch", "1"],
    ])
    def test_other_subcommands_reject_watch(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "--watch" in capsys.readouterr().err


class TestUniformObservabilityFlags:
    def test_refresh_accepts_stats_and_trace(
        self, corpus_dir, tmp_path, capsys
    ):
        index = str(tmp_path / "r.idx")
        state = str(tmp_path / "r.state.json")
        trace = str(tmp_path / "r-trace.json")
        assert main(["refresh", corpus_dir, "--index", index,
                     "--state", state, "--stats", "--trace-out", trace]) == 0
        assert os.path.exists(trace)

    def test_analyze_accepts_stats_and_trace(
        self, corpus_dir, tmp_path, capsys
    ):
        save = str(tmp_path / "an.idx")
        assert main(["index", corpus_dir, "-i", "1", "-x", "2", "-y", "1",
                     "--save", save]) == 0
        trace = str(tmp_path / "an-trace.json")
        assert main(["analyze", save, "--stats",
                     "--trace-out", trace]) == 0
        assert os.path.exists(trace)

    def test_search_stats_prints_metrics(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "s.idx")
        assert main(["index", corpus_dir, "-i", "1", "-x", "2", "-y", "1",
                     "--save", save]) == 0
        capsys.readouterr()
        assert main(["search", save, "zz9", "--stats"]) == 0
        assert "metrics" in capsys.readouterr().out
