"""The ``repro.api`` facade: one Search session end to end.

Covers the full lifecycle ``build -> query -> refresh -> save -> open``
on the virtual filesystem, the serve() bridge into the service layer,
the curated top-level ``__all__``, and the deprecation shims that keep
historical import sites working.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import Search
from repro.engine.config import ThreadConfig
from repro.fsmodel import VirtualFileSystem
from repro.service import SearchService
from repro.service.snapshot import QueryResult


@pytest.fixture
def small_fs():
    fs = VirtualFileSystem()
    fs.mkdir("docs")
    fs.write_file("docs/cats.txt", b"cat feline whiskers")
    fs.write_file("docs/dogs.txt", b"dog canine bark")
    fs.write_file("docs/both.txt", b"cat dog truce")
    return fs


class TestBuildAndQuery:
    def test_sequential_default_build(self, small_fs):
        session = Search.build(small_fs)
        assert len(session) == 3
        assert session.generation == 0
        assert session.report is not None
        assert session.report.file_count == 3
        assert sorted(session.universe) == [
            "docs/both.txt", "docs/cats.txt", "docs/dogs.txt"
        ]

    def test_query_returns_typed_result(self, small_fs):
        session = Search.build(small_fs)
        result = session.query("cat AND dog")
        assert isinstance(result, QueryResult)
        assert result.paths == ["docs/both.txt"]
        assert result.generation == 0
        assert not result.cached

    def test_repeat_query_is_cached(self, small_fs):
        session = Search.build(small_fs)
        first = session.query("cat")
        again = session.query("cat")
        assert not first.cached and again.cached
        assert again.paths == first.paths
        # normalization: an equivalent query shape hits the same entry
        assert session.query("(cat)").cached

    def test_cache_can_be_disabled(self, small_fs):
        session = Search.build(small_fs, cache=0)
        session.query("cat")
        assert not session.query("cat").cached

    def test_threaded_build_matches_sequential(self, small_fs):
        threaded = Search.build(small_fs, config=ThreadConfig(2, 2, 0))
        sequential = Search.build(small_fs)
        for query in ("cat", "dog", "cat AND dog", "cat OR dog"):
            assert threaded.query(query).paths == sequential.query(query).paths


class TestRefresh:
    def test_refresh_applies_delta_and_bumps_generation(self, small_fs):
        session = Search.build(small_fs)
        session.query("ferret")
        small_fs.write_file("docs/new.txt", b"ferret burrow")
        small_fs.remove_file("docs/dogs.txt")
        change = session.refresh()
        assert change.added == ["docs/new.txt"]
        assert change.removed == ["docs/dogs.txt"]
        assert session.generation == 1
        # the cache was invalidated with the swap
        result = session.query("ferret")
        assert result.paths == ["docs/new.txt"]
        assert not result.cached
        assert session.query("bark").paths == []
        assert session.query("dog").paths == ["docs/both.txt"]

    def test_noop_refresh_keeps_generation_and_cache(self, small_fs):
        session = Search.build(small_fs)
        session.query("cat")
        change = session.refresh()
        assert change.total == 0
        assert session.generation == 0
        assert session.query("cat").cached

    def test_modify_is_detected(self, small_fs):
        session = Search.build(small_fs)
        small_fs.replace_file("docs/cats.txt", b"cat feline purr")
        change = session.refresh()
        assert change.modified == ["docs/cats.txt"]
        assert session.query("purr").paths == ["docs/cats.txt"]
        assert session.query("whiskers").paths == []

    def test_refresh_swaps_rather_than_mutates(self, small_fs):
        # the service-layer contract: a snapshot taken before a refresh
        # keeps answering from the old index
        session = Search.build(small_fs)
        before = session.snapshot()
        old_index = session.index
        small_fs.write_file("docs/new.txt", b"ferret")
        session.refresh()
        assert session.index is not old_index
        assert before.search("ferret") == []
        assert session.query("ferret").paths == ["docs/new.txt"]


class TestSaveAndOpen:
    def test_round_trip_binary_and_json(self, small_fs, tmp_path):
        session = Search.build(small_fs)
        for name in ("index.ridx", "index.idx"):
            path = str(tmp_path / name)
            written = session.save(path)
            assert written > 0
            reopened = Search.open(path)
            assert len(reopened) == 3
            assert reopened.query("cat AND dog").paths == ["docs/both.txt"]
            assert reopened.report is None

    def test_open_with_source_reconciles_on_first_refresh(
        self, small_fs, tmp_path
    ):
        path = str(tmp_path / "index.ridx")
        Search.build(small_fs).save(path)
        small_fs.write_file("docs/late.txt", b"gecko")
        small_fs.replace_file("docs/cats.txt", b"cat purr")
        small_fs.remove_file("docs/dogs.txt")
        session = Search.open(path, source=small_fs)
        change = session.refresh()
        assert change.added == ["docs/late.txt"]
        assert change.modified == ["docs/cats.txt"]
        assert change.removed == ["docs/dogs.txt"]
        assert session.query("gecko").paths == ["docs/late.txt"]
        # and the next refresh is an ordinary incremental no-op
        assert session.refresh().total == 0

    def test_refresh_without_source_raises(self, small_fs, tmp_path):
        path = str(tmp_path / "index.idx")
        Search.build(small_fs).save(path)
        session = Search.open(path)
        with pytest.raises(ValueError, match="source"):
            session.refresh()

    def test_rebuild_reruns_the_original_engine(self, small_fs):
        session = Search.build(small_fs, config=ThreadConfig(2, 2, 0))
        small_fs.write_file("docs/new.txt", b"ferret")
        report = session.rebuild()
        assert report.file_count == 4
        assert session.generation == 1
        assert session.query("ferret").paths == ["docs/new.txt"]


class TestServe:
    def test_serve_bridges_to_service(self, small_fs):
        session = Search.build(small_fs)
        with session.serve(workers=2) as service:
            assert isinstance(service, SearchService)
            assert service.query("cat AND dog").paths == ["docs/both.txt"]
            small_fs.write_file("docs/new.txt", b"ferret")
            outcome = service.refresh()
            assert outcome.generation == 1
            assert outcome.change.added == ["docs/new.txt"]
            result = service.query("ferret")
            assert result.paths == ["docs/new.txt"]
            assert result.generation == 1

    def test_serve_without_source_has_no_refresher(self, small_fs, tmp_path):
        path = str(tmp_path / "index.idx")
        Search.build(small_fs).save(path)
        with Search.open(path).serve() as service:
            assert service.query("cat").paths
            with pytest.raises(ValueError):
                service.refresh()


class TestCuratedTopLevel:
    def test_all_is_exactly_the_curated_api(self):
        assert set(repro.__all__) == {
            "AsyncSearchFrontend", "BuildReport", "Extractor",
            "ExtractorSpec", "FaultPolicy", "InvertedIndex",
            "QueryEngine", "ScatterGatherBroker", "Search",
            "SearchService", "ShardDeadError", "ThreadConfig",
            "get_extractor",
        }

    def test_curated_names_import_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in repro.__all__:
                assert getattr(repro, name) is not None

    @pytest.mark.parametrize("name,home", [
        ("IndexGenerator", "repro.engine"),
        ("SequentialIndexer", "repro.engine"),
        ("CorpusGenerator", "repro.corpus"),
        ("TINY_PROFILE", "repro.corpus"),
        ("MultiIndex", "repro.index"),
        ("join_indices", "repro.index"),
        ("parse_query", "repro.query"),
        ("SimPipeline", "repro.simengine"),
        ("Workload", "repro.simengine"),
        ("QUAD_CORE", "repro.platforms"),
    ])
    def test_legacy_names_resolve_with_deprecation_warning(self, name, home):
        import importlib

        with pytest.warns(DeprecationWarning, match=home.replace(".", "\\.")):
            legacy = getattr(repro, name)
        assert legacy is getattr(importlib.import_module(home), name)

    def test_legacy_import_warns_every_time(self):
        # the shim must not cache into globals(), or only the first
        # offending import site would ever be flagged
        for _ in range(2):
            with pytest.warns(DeprecationWarning):
                repro.IndexGenerator

    def test_dir_lists_both_worlds(self):
        names = dir(repro)
        assert "Search" in names and "Workload" in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_old_entry_points_still_work_end_to_end(self, small_fs):
        # the quickstart from the 1.x README, unchanged except for the
        # warning it now raises
        with pytest.warns(DeprecationWarning):
            from repro import IndexGenerator
        from repro import Implementation

        report = IndexGenerator(small_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(2, 2, 0)
        )
        assert report.file_count == 3
