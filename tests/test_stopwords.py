"""Tests for stopword derivation and stopword-aware tokenization,
plus the engine's per-extractor instrumentation."""

import pytest

from repro.engine import Implementation, IndexGenerator, SequentialIndexer, ThreadConfig
from repro.extract import AsciiExtractor
from repro.fsmodel import VirtualFileSystem
from repro.text import Tokenizer, derive_stopwords


class TestStopwordTokenizer:
    def test_stopwords_dropped(self):
        tokenizer = Tokenizer(stopwords={"the", "and"})
        assert tokenizer.tokenize(b"the cat and the dog") == ["cat", "dog"]

    def test_empty_stopwords_by_default(self):
        assert Tokenizer().tokenize(b"the cat") == ["the", "cat"]

    def test_stopword_comparison_after_lowercasing(self):
        tokenizer = Tokenizer(stopwords={"the"})
        assert tokenizer.tokenize(b"THE cat") == ["cat"]

    def test_count_terms_respects_stopwords(self):
        tokenizer = Tokenizer(stopwords={"aa"})
        assert tokenizer.count_terms(b"aa bb aa cc") == 2


class TestDeriveStopwords:
    @pytest.fixture
    def fs(self):
        fs = VirtualFileSystem()
        # "common" is in all 4 files; "half" in 2; the rest in 1.
        fs.write_file("a.txt", b"common half unique1")
        fs.write_file("b.txt", b"common half unique2")
        fs.write_file("c.txt", b"common unique3")
        fs.write_file("d.txt", b"common unique4")
        return fs

    def test_threshold(self, fs):
        stopwords = derive_stopwords(fs, min_document_fraction=0.9)
        assert stopwords == frozenset({"common"})

    def test_lower_threshold_catches_half(self, fs):
        stopwords = derive_stopwords(fs, min_document_fraction=0.5)
        assert stopwords == frozenset({"common", "half"})

    def test_top_k_caps(self, fs):
        stopwords = derive_stopwords(fs, min_document_fraction=0.25, top_k=1)
        assert stopwords == frozenset({"common"})

    def test_top_k_zero(self, fs):
        assert derive_stopwords(fs, top_k=0) == frozenset()

    def test_sample_limit(self, fs):
        stopwords = derive_stopwords(
            fs, min_document_fraction=1.0, sample_limit=2
        )
        assert "common" in stopwords

    def test_empty_fs(self):
        assert derive_stopwords(VirtualFileSystem()) == frozenset()

    def test_invalid_fraction(self, fs):
        with pytest.raises(ValueError):
            derive_stopwords(fs, min_document_fraction=0.0)

    def test_invalid_top_k(self, fs):
        with pytest.raises(ValueError):
            derive_stopwords(fs, top_k=-1)

    def test_zipf_corpus_has_stopwords(self, tiny_fs):
        stopwords = derive_stopwords(tiny_fs, min_document_fraction=0.9)
        assert stopwords  # rank-0 Zipf terms appear everywhere

    def test_stopwords_shrink_index(self, tiny_fs):
        full = SequentialIndexer(tiny_fs, naive=False).build()
        stopped = SequentialIndexer(
            tiny_fs,
            extractor=AsciiExtractor(Tokenizer(
                stopwords=derive_stopwords(tiny_fs, min_document_fraction=0.8)
            )),
            naive=False,
        ).build()
        assert stopped.posting_count < full.posting_count
        assert stopped.term_count < full.term_count


class TestExtractorInstrumentation:
    def test_per_extractor_times_recorded(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
        )
        assert len(report.extractor_times) == 3
        assert all(t > 0 for t in report.extractor_times)

    def test_imbalance_metric(self, tiny_fs):
        report = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(2, 2, 0)
        )
        assert report.extractor_imbalance >= 1.0

    def test_sequential_report_has_no_extractor_times(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        assert report.extractor_times == []
        assert report.extractor_imbalance == 1.0
