"""Tests for index statistics and diagnostics."""

import pytest

from repro.index import InvertedIndex, MultiIndex
from repro.index.analysis import (
    analyze,
    estimate_memory_bytes,
    postings_histogram,
    top_terms,
)
from repro.text import TermBlock


def block(path, *terms):
    return TermBlock(path, tuple(terms))


@pytest.fixture
def index():
    idx = InvertedIndex()
    idx.add_block(block("f1", "common", "rare1"))
    idx.add_block(block("f2", "common", "rare2"))
    idx.add_block(block("f3", "common"))
    return idx


class TestAnalyze:
    def test_counts(self, index):
        stats = analyze(index)
        assert stats.term_count == 3
        assert stats.posting_count == 5
        assert stats.max_postings == 3

    def test_mean_and_median(self, index):
        stats = analyze(index)
        assert stats.mean_postings == pytest.approx(5 / 3)
        assert stats.median_postings == 1.0

    def test_singletons(self, index):
        stats = analyze(index)
        assert stats.singleton_terms == 2
        assert stats.singleton_fraction == pytest.approx(2 / 3)

    def test_empty_index(self):
        stats = analyze(InvertedIndex())
        assert stats.term_count == 0
        assert stats.singleton_fraction == 0.0

    def test_multi_index_merges_counts(self, index):
        r2 = InvertedIndex()
        r2.add_block(block("f4", "common"))
        multi = MultiIndex([index, r2])
        stats = analyze(multi)
        assert stats.max_postings == 4
        assert stats.posting_count == 6

    def test_real_corpus_zipf_shape(self, tiny_fs):
        from repro.engine import SequentialIndexer

        idx = SequentialIndexer(tiny_fs, naive=False).build().index
        stats = analyze(idx)
        # Zipfian text: most terms are rare, a few are everywhere.
        assert stats.median_postings < stats.mean_postings
        assert stats.max_postings > 10 * stats.median_postings


class TestTopTerms:
    def test_ordering(self, index):
        top = top_terms(index, 2)
        assert top[0] == ("common", 3)
        assert top[1][1] == 1

    def test_ties_broken_by_term(self, index):
        top = top_terms(index, 3)
        assert [t for t, _ in top[1:]] == ["rare1", "rare2"]

    def test_limit(self, index):
        assert len(top_terms(index, 1)) == 1


class TestHistogram:
    def test_buckets_cover_all_terms(self, index):
        histogram = postings_histogram(index, buckets=4)
        assert sum(count for _, _, count in histogram) == 3

    def test_bucket_bounds(self):
        histogram = postings_histogram(InvertedIndex(), buckets=3)
        assert histogram[0][0] == 1
        assert histogram[-1][1] == -1  # open-ended last bucket

    def test_invalid_buckets(self, index):
        with pytest.raises(ValueError):
            postings_histogram(index, buckets=0)

    def test_long_postings_in_high_bucket(self):
        idx = InvertedIndex()
        for i in range(40):
            idx.add_block(block(f"f{i}", "everywhere"))
        histogram = postings_histogram(idx, buckets=8)
        assert histogram[5][2] == 1  # 2^5..2^6-1 covers 40


class TestMemoryEstimate:
    def test_grows_with_content(self, index):
        small = estimate_memory_bytes(index)
        index.add_block(block("f4", "common", "brand", "new", "terms"))
        assert estimate_memory_bytes(index) > small

    def test_empty(self):
        assert estimate_memory_bytes(InvertedIndex()) == 0
