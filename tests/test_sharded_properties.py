"""Property-based tests (hypothesis) of the sharded scoring contract.

Random corpora, random shard counts and partition strategies, random
boolean queries — the broker must honour the two halves of the
contract in ``docs/sharded.md``:

* **boolean**: the merged answer is byte-identical to the unsharded
  engine's, for *any* query the language can express (document
  partitioning commutes with per-document evaluation);
* **BM25**: the merged top-K is exactly the first K of the
  concatenated per-shard top-K lists under the documented
  ``(score desc, path asc)`` tie-break — a permutation-stable prefix —
  and collapses to the unsharded ranking when there is one shard.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex
from repro.query.evaluator import QueryEngine
from repro.query.ranking import FrequencyIndex
from repro.service.sharded import (
    RankedQueryEngine,
    SHARD_STRATEGIES,
    local_broker,
    partition_paths,
    shard_snapshots,
)
from repro.text.termblock import TermBlock

#: A small shared vocabulary so random documents overlap on terms —
#: merges with no overlap would never stress the set-union or the
#: tie-break.  Shared prefixes stress wildcard expansion per shard.
VOCAB = ("alpha", "alphabet", "beta", "gamma", "delta", "zeta")

paths = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
corpora = st.dictionaries(
    paths,
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=8),
    min_size=1,
    max_size=10,
)
shard_counts = st.integers(min_value=1, max_value=4)
strategies = st.sampled_from(SHARD_STRATEGIES)

atoms = st.sampled_from(VOCAB + ("nosuchterm", "alph*", "ze*", "qq*"))
queries = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.tuples(children, children).map(
            lambda pair: f"({pair[0]} AND {pair[1]})"
        ),
        st.tuples(children, children).map(
            lambda pair: f"({pair[0]} OR {pair[1]})"
        ),
        children.map(lambda q: f"(NOT {q})"),
    ),
    max_leaves=4,
)


def build_corpus(docs):
    index = InvertedIndex()
    frequencies = FrequencyIndex()
    for path in sorted(docs):
        words = docs[path]
        index.add_block(TermBlock(path, tuple(sorted(set(words)))))
        frequencies.add_document(path, words)
    return index, frequencies


class TestPartitionProperties:
    @given(docs=corpora, shards=shard_counts, strategy=strategies)
    @settings(max_examples=40, deadline=None)
    def test_partition_is_always_a_disjoint_cover(self, docs, shards,
                                                  strategy):
        sizes = {path: len(words) for path, words in docs.items()}
        parts = partition_paths(docs, shards, strategy, sizes=sizes)
        assert len(parts) == shards
        flat = [path for part in parts for path in part]
        assert sorted(flat) == sorted(docs)
        assert len(flat) == len(set(flat))


class TestBooleanEquivalence:
    @given(docs=corpora, shards=shard_counts, strategy=strategies,
           query=queries)
    @settings(max_examples=25, deadline=None)
    def test_sharded_boolean_equals_unsharded_byte_for_byte(
        self, docs, shards, strategy, query
    ):
        index, _ = build_corpus(docs)
        engine = QueryEngine(index, universe=frozenset(docs))
        snapshots = shard_snapshots(index, docs, shards,
                                    strategy=strategy)
        broker = local_broker(snapshots)
        try:
            result = broker.query(query)
            assert result.paths == engine.search(query)
            assert result.shards_ok == result.shards_total == shards
        finally:
            broker.close()


class TestBM25Prefix:
    @given(docs=corpora, shards=shard_counts, query=queries,
           topk=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_merge_is_a_permutation_stable_prefix(self, docs, shards,
                                                  query, topk):
        index, frequencies = build_corpus(docs)
        snapshots = shard_snapshots(index, docs, shards,
                                    frequencies=frequencies)
        broker = local_broker(snapshots)
        try:
            merged = broker.query(query, rank="bm25", topk=topk).hits
            per_shard = []
            for group in broker.groups:
                per_shard.extend(
                    group.query(query, rank="bm25", topk=topk).hits
                )
            per_shard.sort(key=lambda hit: (-hit.score, hit.path))
            assert merged == per_shard[:topk]
            # the merge itself is ordered under the documented tie-break
            keys = [(-hit.score, hit.path) for hit in merged]
            assert keys == sorted(keys)
        finally:
            broker.close()

    @given(docs=corpora, query=queries,
           topk=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_one_shard_collapses_to_the_unsharded_ranking(self, docs,
                                                          query, topk):
        # With a single shard, "shard-local" statistics *are* the
        # global ones: scores and order must match exactly.
        index, frequencies = build_corpus(docs)
        reference = RankedQueryEngine(
            index, universe=frozenset(docs), frequencies=frequencies
        )
        snapshots = shard_snapshots(index, docs, 1,
                                    frequencies=frequencies)
        broker = local_broker(snapshots)
        try:
            merged = broker.query(query, rank="bm25", topk=topk).hits
            assert merged == reference.search_bm25(query, topk=topk)
        finally:
            broker.close()
