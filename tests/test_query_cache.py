"""Tests for the query result cache."""

import pytest

from repro.index import InvertedIndex
from repro.query import QueryEngine
from repro.query.cache import CachingQueryEngine, QueryCache, cache_key
from repro.text import TermBlock


def make_engine():
    index = InvertedIndex()
    index.add_block(TermBlock("f1", ("cat", "dog")))
    index.add_block(TermBlock("f2", ("cat",)))
    return QueryEngine(index, universe=["f1", "f2"])


class TestCacheKeySchema:
    """Pins the key tuple — every producer and consumer shares it, so
    a silent reshape would let entries cross lookup modes or serving
    topologies."""

    def test_schema_is_the_five_tuple(self):
        assert cache_key("cat", False) == ("cat", False, "bool", None, None)
        assert cache_key("cat", True, "bm25", 10, "shards=3") == (
            "cat", True, "bm25", 10, "shards=3"
        )

    def test_topology_scope_separates_entries(self):
        # A sharded BM25 top-K is scored with shard-local statistics:
        # it must never satisfy an unsharded lookup or one behind a
        # different shard count.
        unsharded = cache_key("cat", False, "bm25", 10)
        three = cache_key("cat", False, "bm25", 10, "shards=3")
        five = cache_key("cat", False, "bm25", 10, "shards=5")
        assert len({unsharded, three, five}) == 3
        cache = QueryCache()
        cache.put(three, ["sharded-garbage"])
        assert cache.get(unsharded) is None
        assert cache.get(five) is None
        assert cache.get(three) == ["sharded-garbage"]


class TestQueryCache:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get(("q", False)) is None
        cache.put(("q", False), ["a"])
        assert cache.get(("q", False)) == ["a"]
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(("a", False), [])
        cache.put(("b", False), [])
        cache.get(("a", False))  # refresh "a"
        cache.put(("c", False), [])  # evicts "b"
        assert cache.get(("b", False)) is None
        assert cache.get(("a", False)) is not None

    def test_put_existing_updates(self):
        cache = QueryCache(capacity=1)
        cache.put(("q", False), ["old"])
        cache.put(("q", False), ["new"])
        assert cache.get(("q", False)) == ["new"]
        assert len(cache) == 1

    def test_returned_list_is_a_copy(self):
        cache = QueryCache()
        cache.put(("q", False), ["a"])
        cache.get(("q", False)).append("junk")
        assert cache.get(("q", False)) == ["a"]

    def test_clear(self):
        cache = QueryCache()
        cache.put(("q", False), ["a"])
        cache.clear()
        assert cache.get(("q", False)) is None

    def test_hit_rate(self):
        cache = QueryCache()
        assert cache.hit_rate == 0.0
        cache.put(("q", False), [])
        cache.get(("q", False))
        cache.get(("other", False))
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)


class TestCachingQueryEngine:
    def test_results_match_uncached(self):
        plain = make_engine()
        caching = CachingQueryEngine(make_engine())
        for query in ("cat", "cat AND dog", "cat OR dog", "NOT dog"):
            assert caching.search(query) == plain.search(query)
            # Second time: served from cache, still identical.
            assert caching.search(query) == plain.search(query)

    def test_repeat_query_hits_cache(self):
        caching = CachingQueryEngine(make_engine())
        caching.search("cat")
        caching.search("cat")
        assert caching.cache.hits == 1

    def test_normalization_shares_entries(self):
        caching = CachingQueryEngine(make_engine())
        caching.search("cat AND cat")
        caching.search("cat")
        assert caching.cache.hits == 1

    def test_parallel_flag_separates_entries(self):
        caching = CachingQueryEngine(make_engine())
        caching.search("cat", parallel=False)
        caching.search("cat", parallel=True)
        assert caching.cache.hits == 0

    def test_invalidation(self):
        caching = CachingQueryEngine(make_engine())
        caching.search("cat")
        caching.invalidate()
        caching.search("cat")
        assert caching.cache.misses == 2

    def test_incremental_workflow(self):
        """Cache + incremental index: invalidate after refresh."""
        from repro.fsmodel import VirtualFileSystem
        from repro.index.incremental import IncrementalIndexer

        fs = VirtualFileSystem()
        fs.write_file("a.txt", b"needle here")
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        caching = CachingQueryEngine(QueryEngine(indexer.index.index))
        assert caching.search("needle") == ["a.txt"]

        fs.write_file("b.txt", b"another needle")
        indexer.refresh()
        caching.invalidate()
        assert caching.search("needle") == ["a.txt", "b.txt"]
