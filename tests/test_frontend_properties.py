"""Property: single-flight coalescing is result-transparent.

Hypothesis drives bursts of concurrent queries — identical and
distinct texts, boolean and BM25, mixed top-K and parallel flags —
through an :class:`~repro.service.frontend.AsyncSearchFrontend` over a
stub engine whose answers are a *pure function of the cache key*.  The
oracle: every caller gets exactly the result a solo run of its own key
would have produced, no matter what it coalesced with.  In particular
a BM25 entry can never satisfy a boolean waiter (their keys differ, so
their pure-function answers differ), and two texts that normalize to
the same plan share one evaluation without changing anyone's answer.

Bookkeeping must balance too: with single-flight on, every submission
is either an evaluated leader or a coalesced follower —
``evaluations + coalesced == submitted`` — and with it off, coalescing
never happens at all.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex
from repro.query import RankedHit, normalize_query
from repro.service import AsyncSearchFrontend, IndexSnapshot, SearchService
from repro.text.termblock import TermBlock

#: texts chosen so some pairs normalize identically ("alpha AND bravo"
#: vs the whitespace variant) and others are genuinely distinct.
TEXTS = (
    "alpha",
    "bravo",
    "alpha AND bravo",
    "alpha  AND   bravo",
    "alpha OR bravo",
    "NOT alpha",
)

submissions = st.lists(
    st.tuples(
        st.sampled_from(TEXTS),
        st.sampled_from(("bool", "bm25")),
        st.sampled_from((1, 3, 10)),
        st.booleans(),
    ),
    min_size=1,
    max_size=10,
)


class PureKeyEngine:
    """Answers are a deterministic pure function of the cache key."""

    def search(self, text: str, parallel: bool = False):
        return [f"bool:{normalize_query(text)}:parallel={int(parallel)}"]

    def search_bm25(self, text: str, topk: int = 10):
        normalized = normalize_query(text)
        return [
            RankedHit(f"bm25:{normalized}:rank={k}", 1.0 / (k + 1))
            for k in range(min(topk, 4))
        ]


def tiny_snapshot() -> IndexSnapshot:
    index = InvertedIndex()
    index.add_block(TermBlock("doc.txt", ("alpha", "bravo")))
    return IndexSnapshot(index, engine=PureKeyEngine())


def solo_answer(spec):
    """What a lone run of this exact submission must return."""
    text, rank, topk, parallel = spec
    engine = PureKeyEngine()
    if rank == "bm25":
        hits = engine.search_bm25(text, topk=topk)
        return [hit.path for hit in hits], hits
    return engine.search(text, parallel=parallel), None


class TestCoalescingTransparency:
    @settings(max_examples=30, deadline=None)
    @given(burst=submissions, single_flight=st.booleans())
    def test_every_caller_gets_its_own_keys_solo_result(
        self, burst, single_flight
    ):
        service = SearchService(tiny_snapshot(), workers=1, max_inflight=64)
        frontend = AsyncSearchFrontend(
            service,
            single_flight=single_flight,
            workers=2,
            stage_workers=2,
            own_service=True,
        )
        try:
            tickets = [
                frontend.submit(text, parallel=parallel, rank=rank, topk=topk)
                for text, rank, topk, parallel in burst
            ]
            results = [ticket.result(timeout=30) for ticket in tickets]
            for spec, result in zip(burst, results):
                expected_paths, expected_hits = solo_answer(spec)
                assert result.paths == expected_paths, spec
                if expected_hits is None:
                    assert result.hits is None, spec
                else:
                    assert [
                        (hit.path, hit.score) for hit in result.hits
                    ] == [
                        (hit.path, hit.score) for hit in expected_hits
                    ], spec
            stats = frontend.stats()
            assert stats["frontend.submitted"] == len(burst)
            assert stats["frontend.served"] == len(burst)
            assert stats["frontend.shed"] == 0
            if single_flight:
                # Every submission is either an evaluated leader or a
                # coalesced follower.
                assert (
                    stats["frontend.evaluations"]
                    + stats["frontend.coalesced"]
                    == len(burst)
                )
            else:
                assert stats["frontend.coalesced"] == 0
                assert stats["frontend.evaluations"] == len(burst)
        finally:
            frontend.close()
