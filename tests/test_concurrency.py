"""Tests for the bounded buffer, barrier and sharded lock."""

import threading
import time

import pytest

from repro.concurrency import BoundedBuffer, Closed, ReusableBarrier, ShardedLock


class TestBoundedBuffer:
    def test_fifo_order(self):
        buffer = BoundedBuffer(capacity=10)
        for i in range(5):
            buffer.put(i)
        assert [buffer.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_get_after_close_drains_then_raises(self):
        buffer = BoundedBuffer(capacity=10)
        buffer.put("item")
        buffer.close()
        assert buffer.get() == "item"
        with pytest.raises(Closed):
            buffer.get()

    def test_put_after_close_raises(self):
        buffer = BoundedBuffer()
        buffer.close()
        with pytest.raises(Closed):
            buffer.put(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedBuffer(capacity=0)

    def test_len_and_closed(self):
        buffer = BoundedBuffer()
        buffer.put(1)
        assert len(buffer) == 1
        assert not buffer.closed
        buffer.close()
        assert buffer.closed

    def test_put_blocks_when_full(self):
        buffer = BoundedBuffer(capacity=1)
        buffer.put("first")
        progressed = []

        def producer():
            buffer.put("second")
            progressed.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not progressed  # blocked on full buffer
        assert buffer.get() == "first"
        thread.join(timeout=2)
        assert progressed

    def test_get_blocks_until_put(self):
        buffer = BoundedBuffer()
        result = []

        def consumer():
            result.append(buffer.get())

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not result
        buffer.put("hello")
        thread.join(timeout=2)
        assert result == ["hello"]

    def test_close_wakes_blocked_getter(self):
        buffer = BoundedBuffer()
        outcome = []

        def consumer():
            try:
                buffer.get()
            except Closed:
                outcome.append("closed")

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        buffer.close()
        thread.join(timeout=2)
        assert outcome == ["closed"]

    def test_many_producers_many_consumers(self):
        buffer = BoundedBuffer(capacity=4)
        produced = list(range(200))
        consumed = []
        consumed_lock = threading.Lock()

        def producer(items):
            for item in items:
                buffer.put(item)

        def consumer():
            while True:
                try:
                    item = buffer.get()
                except Closed:
                    return
                with consumed_lock:
                    consumed.append(item)

        producers = [
            threading.Thread(target=producer, args=(produced[i::4],), daemon=True)
            for i in range(4)
        ]
        consumers = [
            threading.Thread(target=consumer, daemon=True) for _ in range(3)
        ]
        for thread in producers + consumers:
            thread.start()
        for thread in producers:
            thread.join(timeout=5)
        buffer.close()
        for thread in consumers:
            thread.join(timeout=5)
        assert sorted(consumed) == produced

    def test_lock_operations_counted(self):
        buffer = BoundedBuffer()
        buffer.put(1)
        buffer.get()
        assert buffer.lock_operations == 2


class TestReusableBarrier:
    def test_single_party_never_blocks(self):
        barrier = ReusableBarrier(1)
        assert barrier.wait(timeout=1) == 0
        assert barrier.generation == 1

    def test_two_parties_meet(self):
        barrier = ReusableBarrier(2)
        indices = []

        def participant():
            indices.append(barrier.wait(timeout=5))

        thread = threading.Thread(target=participant, daemon=True)
        thread.start()
        barrier.wait(timeout=5)
        thread.join(timeout=2)
        assert sorted(indices + [1 - indices[0]]) == [0, 1]

    def test_reusable_across_generations(self):
        barrier = ReusableBarrier(2)

        def participant():
            for _ in range(3):
                barrier.wait(timeout=5)

        thread = threading.Thread(target=participant, daemon=True)
        thread.start()
        for _ in range(3):
            barrier.wait(timeout=5)
        thread.join(timeout=2)
        assert barrier.generation == 3

    def test_timeout(self):
        barrier = ReusableBarrier(2)
        with pytest.raises(TimeoutError):
            barrier.wait(timeout=0.05)

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            ReusableBarrier(0)

    def test_waiting_count(self):
        barrier = ReusableBarrier(2)
        thread = threading.Thread(
            target=lambda: barrier.wait(timeout=5), daemon=True
        )
        thread.start()
        time.sleep(0.05)
        assert barrier.waiting == 1
        barrier.wait(timeout=5)  # releases the waiter
        thread.join(timeout=2)
        assert barrier.waiting == 0


class TestShardedLock:
    def test_shard_for_stable(self):
        lock = ShardedLock(shards=8)
        assert lock.shard_for("key") == lock.shard_for("key")
        assert 0 <= lock.shard_for("key") < 8

    def test_locked_context(self):
        lock = ShardedLock(shards=4)
        with lock.locked("key"):
            inner = lock._locks[lock.shard_for("key")]
            assert inner.locked()
        assert not inner.locked()

    def test_different_shards_independent(self):
        lock = ShardedLock(shards=64)
        # Find two keys in different shards.
        keys = [f"key{i}" for i in range(100)]
        a = keys[0]
        b = next(k for k in keys if lock.shard_for(k) != lock.shard_for(a))
        with lock.locked(a):
            acquired = []

            def try_b():
                with lock.locked(b):
                    acquired.append(True)

            thread = threading.Thread(target=try_b, daemon=True)
            thread.start()
            thread.join(timeout=2)
            assert acquired

    def test_locked_all(self):
        lock = ShardedLock(shards=4)
        with lock.locked_all():
            assert all(inner.locked() for inner in lock._locks)
        assert not any(inner.locked() for inner in lock._locks)

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedLock(shards=0)

    def test_parallel_increments_consistent(self):
        lock = ShardedLock(shards=16)
        counts = {}

        def work(worker):
            for i in range(200):
                key = f"key{i % 20}"
                with lock.locked(key):
                    counts[key] = counts.get(key, 0) + 1

        threads = [
            threading.Thread(target=work, args=(w,), daemon=True) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert sum(counts.values()) == 4 * 200
