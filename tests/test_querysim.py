"""Tests for the simulated query-serving study."""

import pytest

from repro.platforms import MANYCORE_32, QUAD_CORE
from repro.simengine.querysim import (
    MODES,
    QuerySimulation,
    QueryWorkloadSpec,
)


@pytest.fixture(scope="module")
def simulation(tiny_workload):
    return QuerySimulation(
        QUAD_CORE, tiny_workload, QueryWorkloadSpec(query_count=80, seed=3)
    )


class TestQueryWorkloadSpec:
    def test_defaults_valid(self):
        spec = QueryWorkloadSpec()
        assert spec.query_count == 500

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            QueryWorkloadSpec(query_count=0)

    def test_invalid_terms(self):
        with pytest.raises(ValueError):
            QueryWorkloadSpec(mean_terms_per_query=0.5)


class TestQueryGeneration:
    def test_deterministic(self, tiny_workload):
        spec = QueryWorkloadSpec(query_count=50, seed=9)
        a = QuerySimulation(QUAD_CORE, tiny_workload, spec)._queries
        b = QuerySimulation(QUAD_CORE, tiny_workload, spec)._queries
        assert a == b

    def test_query_shapes(self, simulation):
        for query in simulation._queries:
            assert 1 <= len(query.postings_per_term) <= 6
            assert all(p >= 1 for p in query.postings_per_term)

    def test_postings_bounded_by_file_count(self, simulation, tiny_workload):
        for query in simulation._queries:
            assert all(
                p <= len(tiny_workload.files)
                for p in query.postings_per_term
            )


class TestQueryService:
    def test_all_queries_served(self, simulation):
        result = simulation.run("joined", workers=2)
        assert len(result.latencies) == 80

    def test_unknown_mode_rejected(self, simulation):
        with pytest.raises(ValueError):
            simulation.run("quantum", workers=1)

    def test_invalid_workers(self, simulation):
        with pytest.raises(ValueError):
            simulation.run("joined", workers=0)

    def test_joined_ignores_replica_count(self, simulation):
        result = simulation.run("joined", workers=1, replicas=8)
        assert result.replicas == 1

    def test_deterministic(self, simulation):
        a = simulation.run("replicas-parallel", workers=2, replicas=4)
        b = simulation.run("replicas-parallel", workers=2, replicas=4)
        assert a.total_s == b.total_s
        assert a.latencies == b.latencies

    def test_metrics_consistent(self, simulation):
        result = simulation.run("joined", workers=2)
        assert result.throughput_qps == pytest.approx(
            len(result.latencies) / result.total_s
        )
        assert result.mean_latency_ms > 0
        assert result.p95_latency_ms() >= result.mean_latency_ms * 0.5

    def test_sweep_covers_all_modes(self, simulation):
        sweep = simulation.sweep([1, 2], replicas=2)
        assert set(sweep) == set(MODES)
        assert all(len(results) == 2 for results in sweep.values())


class TestQueryServiceShape:
    """The findings the future-work study exists to demonstrate."""

    @pytest.fixture(scope="class")
    def many(self, tiny_workload):
        return QuerySimulation(
            MANYCORE_32, tiny_workload, QueryWorkloadSpec(query_count=150)
        )

    def test_parallel_lookup_cuts_latency_at_light_load(self, many):
        sequential = many.run("replicas-sequential", workers=1, replicas=4)
        parallel = many.run("replicas-parallel", workers=1, replicas=4)
        assert parallel.mean_latency_ms < sequential.mean_latency_ms * 0.7

    def test_parallel_throughput_wins_with_idle_cores(self, many):
        sequential = many.run("replicas-sequential", workers=4, replicas=4)
        parallel = many.run("replicas-parallel", workers=4, replicas=4)
        assert parallel.throughput_qps > sequential.throughput_qps

    def test_joined_and_sequential_equivalent_work(self, many):
        joined = many.run("joined", workers=2)
        sequential = many.run("replicas-sequential", workers=2, replicas=4)
        # Probing k shards of 1/k postings costs nearly the same as one
        # probe of the whole list (plus k-1 extra hash probes).
        assert sequential.mean_latency_ms == pytest.approx(
            joined.mean_latency_ms, rel=0.25
        )

    def test_more_workers_increase_throughput_until_cores(self, many):
        one = many.run("joined", workers=1)
        eight = many.run("joined", workers=8)
        assert eight.throughput_qps > one.throughput_qps * 4


class TestDocShardedService:
    """The scatter-gather broker's simulated counterpart."""

    @pytest.fixture(scope="class")
    def many(self, tiny_workload):
        return QuerySimulation(
            MANYCORE_32, tiny_workload, QueryWorkloadSpec(query_count=100)
        )

    def test_all_queries_served_and_deterministic(self, many):
        a = many.run_doc_sharded(workers=4, shards=4)
        b = many.run_doc_sharded(workers=4, shards=4)
        assert len(a.latencies) == 100
        assert a.mode == "doc-sharded"
        assert a.replicas == 4  # records the shard count
        assert a.total_s == b.total_s
        assert a.latencies == b.latencies

    def test_validation(self, many):
        with pytest.raises(ValueError):
            many.run_doc_sharded(workers=0, shards=2)
        with pytest.raises(ValueError):
            many.run_doc_sharded(workers=2, shards=0)

    def test_sharding_cuts_latency_at_light_load(self, many):
        one = many.run_doc_sharded(workers=2, shards=1)
        eight = many.run_doc_sharded(workers=2, shards=8)
        # concurrent per-shard probes of 1/8 the postings each
        assert eight.mean_latency_ms < one.mean_latency_ms * 0.7

    def test_scatter_overhead_gives_diminishing_returns(self, many):
        eight = many.run_doc_sharded(workers=8, shards=8)
        thirty_two = many.run_doc_sharded(workers=8, shards=32)
        # 4x the shards does not buy 4x anything: the per-shard
        # dispatch cost grows linearly while the probe saving shrinks
        assert thirty_two.mean_latency_ms > eight.mean_latency_ms * 0.5

    def test_sweep_covers_the_grid(self, many):
        sweep = many.sweep_doc_sharded([1, 4], [2, 8])
        assert sorted(sweep) == [2, 8]
        for shards, results in sweep.items():
            assert [r.workers for r in results] == [1, 4]
            assert all(r.replicas == shards for r in results)
