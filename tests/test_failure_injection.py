"""Failure-injection tests: the engine must fail loudly, never hang.

A desktop indexer meets unreadable files, vanishing files and corrupt
content all the time.  These tests wrap the filesystem with fault
injectors and assert that every implementation propagates the original
error promptly — in particular that a dying updater thread cannot
deadlock extractors blocked on a full buffer.
"""

import pytest

from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)


class ExplodingFileSystem:
    """Delegates to a real VFS but raises on selected paths."""

    def __init__(self, inner, poison_paths, error=OSError("injected I/O error")):
        self._inner = inner
        self._poison = set(poison_paths)
        self._error = error
        self.reads_before_failure = 0

    def list_files(self, root=""):
        return self._inner.list_files(root)

    def read_file(self, path):
        if path in self._poison:
            raise self._error
        self.reads_before_failure += 1
        return self._inner.read_file(path)


def poisoned(tiny_fs, position):
    paths = [ref.path for ref in tiny_fs.list_files()]
    return ExplodingFileSystem(tiny_fs, {paths[position]})


ALL_CONFIGS = [
    (Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 0)),
    (Implementation.SHARED_LOCKED, ThreadConfig(3, 2, 0)),
    (Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)),
    (Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)),
    (Implementation.REPLICATED_UNJOINED, ThreadConfig(4, 0, 0)),
]


class TestReadFailures:
    @pytest.mark.parametrize("implementation,config", ALL_CONFIGS)
    def test_error_propagates(self, tiny_fs, implementation, config):
        fs = poisoned(tiny_fs, position=10)
        with pytest.raises(OSError, match="injected"):
            IndexGenerator(fs).build(implementation, config)

    def test_sequential_propagates(self, tiny_fs):
        with pytest.raises(OSError, match="injected"):
            SequentialIndexer(poisoned(tiny_fs, 5)).build()

    def test_first_file_failure(self, tiny_fs):
        fs = poisoned(tiny_fs, position=0)
        with pytest.raises(OSError):
            IndexGenerator(fs).build(
                Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
            )

    def test_last_file_failure(self, tiny_fs):
        paths = [ref.path for ref in tiny_fs.list_files()]
        fs = ExplodingFileSystem(tiny_fs, {paths[-1]})
        with pytest.raises(OSError):
            IndexGenerator(fs).build(
                Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
            )

    @pytest.mark.parametrize("dynamic", ["steal", "queue"])
    def test_dynamic_modes_propagate(self, tiny_fs, dynamic):
        fs = poisoned(tiny_fs, position=7)
        with pytest.raises(OSError):
            IndexGenerator(fs, dynamic=dynamic).build(
                Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 0)
            )


class TestUpdaterFailures:
    """A dying updater must not deadlock blocked extractors."""

    def test_poisoned_updater_does_not_hang(self, tiny_fs):
        from repro.engine.impl1 import SharedLockedIndexer

        # Injection point: an index whose add_block raises after a few
        # blocks, reached via the updater thread, while a tiny buffer
        # keeps the extractors permanently at the full mark.
        import repro.engine.impl1 as impl1_module

        class BombIndex(impl1_module.InvertedIndex):
            def __init__(self):
                super().__init__()
                self.added = 0

            def add_block(self, block):
                self.added += 1
                if self.added > 3:
                    raise RuntimeError("updater bomb")
                super().add_block(block)

        indexer = SharedLockedIndexer(tiny_fs, buffer_capacity=2)
        original_index = impl1_module.InvertedIndex
        impl1_module.InvertedIndex = BombIndex
        try:
            with pytest.raises(RuntimeError, match="updater bomb"):
                indexer.build(ThreadConfig(4, 1, 0))
        finally:
            impl1_module.InvertedIndex = original_index

    def test_original_error_preferred_over_closed(self, tiny_fs):
        """The updater's exception, not the extractors' secondary
        Closed, is what callers see (asserted by match above); this
        checks the engine is reusable afterwards."""
        report = IndexGenerator(tiny_fs).build(
            Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
        )
        assert report.term_count > 0


class TestVanishingFiles:
    def test_file_listed_but_unreadable(self, tiny_fs):
        """A file that disappears between stage 1 and stage 2."""
        fs = ExplodingFileSystem(
            tiny_fs,
            {next(iter(tiny_fs.list_files())).path},
            error=FileNotFoundError("vanished"),
        )
        with pytest.raises(FileNotFoundError):
            IndexGenerator(fs).build(
                Implementation.REPLICATED_JOINED, ThreadConfig(2, 2, 1)
            )
