"""Systematic equivalence matrix over the engine's full design space.

Every combination of implementation x distribution strategy x work
acquisition mode must produce the identical logical index — the
strongest form of the paper's correctness requirement, because the
*timing* differences between these combinations are the whole study.
"""

import pytest

from repro.distribute import RoundRobinStrategy, SizeBalancedStrategy
from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.index import MultiIndex, join_indices

STRATEGIES = {
    "round-robin": RoundRobinStrategy,
    "size-balanced": SizeBalancedStrategy,
}
DYNAMIC_MODES = (None, "steal", "queue")
RUNS = {
    Implementation.SHARED_LOCKED: ThreadConfig(3, 1, 0),
    Implementation.REPLICATED_JOINED: ThreadConfig(3, 2, 1),
    Implementation.REPLICATED_UNJOINED: ThreadConfig(3, 2, 0),
}


@pytest.fixture(scope="module")
def reference(tiny_fs):
    return SequentialIndexer(tiny_fs, naive=False).build().index


def flatten(index):
    return join_indices(index.replicas) if isinstance(index, MultiIndex) else index


@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
@pytest.mark.parametrize("dynamic", DYNAMIC_MODES, ids=["static", "steal", "queue"])
@pytest.mark.parametrize("implementation", list(RUNS), ids=lambda i: f"impl{i.value}")
class TestEquivalenceMatrix:
    def test_identical_index(
        self, tiny_fs, reference, implementation, strategy_name, dynamic
    ):
        generator = IndexGenerator(
            tiny_fs,
            strategy=STRATEGIES[strategy_name](),
            dynamic=dynamic,
        )
        report = generator.build(implementation, RUNS[implementation])
        assert flatten(report.index) == reference, (
            f"{implementation.paper_name} / {strategy_name} / "
            f"{dynamic or 'static'} diverged from the sequential build"
        )


# -- deterministic schedule matrix -----------------------------------------
#
# The equivalence matrix above runs each combination once under whatever
# interleaving the OS happens to produce.  This sweep pins the
# interleaving instead: every threaded engine is built under 50 seeded
# schedules (random walks and PCT priorities) with race and
# lock-inversion checking on, and every schedule must yield an index
# byte-identical to the sequential build.

from repro.engine.config import ThreadConfig as _ThreadConfig  # noqa: E402
from repro.schedcheck import explore, make_corpus, sequential_reference  # noqa: E402

SCHEDULE_SEEDS = 50
SCHEDULE_CONFIGS = {
    "impl1": (2, 1, 0),   # shared locked index
    "impl1s": (2, 1, 0),  # lock-striped shards
    "impl2": (2, 0, 1),   # replicated, joined (inline updates)
    "impl3": (2, 2, 0),   # replicated, unjoined
}


@pytest.fixture(scope="module")
def schedule_fs():
    return make_corpus(file_count=8)


@pytest.fixture(scope="module")
def schedule_reference(schedule_fs):
    return sequential_reference(schedule_fs)


@pytest.mark.parametrize("engine", sorted(SCHEDULE_CONFIGS))
def test_fifty_seeded_schedules_per_engine(
    engine, schedule_fs, schedule_reference
):
    report = explore(
        engine,
        _ThreadConfig(*SCHEDULE_CONFIGS[engine]),
        range(SCHEDULE_SEEDS),
        fs=schedule_fs,
        strategy="mixed",  # even seeds random walk, odd seeds PCT
    )
    assert len(report.runs) == SCHEDULE_SEEDS
    failures = report.failures
    assert not failures, "\n".join(
        run.describe()
        + f"\n  replay: repro-schedcheck --engine {engine} "
        f"--strategy {run.strategy} --replay {run.seed}"
        for run in failures[:5]
    )
    for run in report.runs:
        assert run.matches_reference is True
