"""Systematic equivalence matrix over the engine's full design space.

Every combination of implementation x distribution strategy x work
acquisition mode must produce the identical logical index — the
strongest form of the paper's correctness requirement, because the
*timing* differences between these combinations are the whole study.
"""

import pytest

from repro.distribute import RoundRobinStrategy, SizeBalancedStrategy
from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.index import MultiIndex, join_indices

STRATEGIES = {
    "round-robin": RoundRobinStrategy,
    "size-balanced": SizeBalancedStrategy,
}
DYNAMIC_MODES = (None, "steal", "queue")
RUNS = {
    Implementation.SHARED_LOCKED: ThreadConfig(3, 1, 0),
    Implementation.REPLICATED_JOINED: ThreadConfig(3, 2, 1),
    Implementation.REPLICATED_UNJOINED: ThreadConfig(3, 2, 0),
}


@pytest.fixture(scope="module")
def reference(tiny_fs):
    return SequentialIndexer(tiny_fs, naive=False).build().index


def flatten(index):
    return join_indices(index.replicas) if isinstance(index, MultiIndex) else index


@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
@pytest.mark.parametrize("dynamic", DYNAMIC_MODES, ids=["static", "steal", "queue"])
@pytest.mark.parametrize("implementation", list(RUNS), ids=lambda i: f"impl{i.value}")
class TestEquivalenceMatrix:
    def test_identical_index(
        self, tiny_fs, reference, implementation, strategy_name, dynamic
    ):
        generator = IndexGenerator(
            tiny_fs,
            strategy=STRATEGIES[strategy_name](),
            dynamic=dynamic,
        )
        report = generator.build(implementation, RUNS[implementation])
        assert flatten(report.index) == reference, (
            f"{implementation.paper_name} / {strategy_name} / "
            f"{dynamic or 'static'} diverged from the sequential build"
        )
