"""Unit tests for the async single-flight query front end.

Functional guarantees of
:class:`~repro.service.frontend.AsyncSearchFrontend` on real threads
(the interleaving-level guarantees live in
``test_frontend_concurrency.py``, transparency properties in
``test_frontend_properties.py``):

* differential identity with a direct ``SearchService.query``;
* single-flight coalescing and batched admission under a controlled
  burst (a blocking stub engine holds the leader in evaluation);
* the two regression fixes: a coalesced follower's ``elapsed_s`` is
  its *own* wait, not the leader's evaluation time, and a query
  rejected at batch admission after passing single-flight lands on the
  shed counter exactly once per affected caller;
* error plumbing (parse errors on the ticket, closed/overloaded
  raises) and the asyncio face.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.index.inverted import InvertedIndex
from repro.query import ParseError, RankedHit, normalize_query
from repro.service import (
    AsyncSearchFrontend,
    IndexSnapshot,
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.text.termblock import TermBlock


def tiny_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_block(TermBlock("doc.txt", ("alpha", "bravo")))
    index.add_block(TermBlock("other.txt", ("alpha", "charlie")))
    return index


class StubEngine:
    """Deterministic engine: results are a pure function of the key.

    ``gate`` (a ``threading.Event``) holds every evaluation until set,
    so tests can pile a burst up behind one in-flight leader.
    """

    def __init__(self, gate: threading.Event = None) -> None:
        self.gate = gate
        self.calls = []

    def _wait(self) -> None:
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0)

    def search(self, text: str, parallel: bool = False):
        self._wait()
        self.calls.append(("bool", text))
        return [f"bool:{normalize_query(text)}:{int(parallel)}"]

    def search_bm25(self, text: str, topk: int = 10):
        self._wait()
        self.calls.append(("bm25", text))
        return [
            RankedHit(f"bm25:{normalize_query(text)}:{k}", 1.0 / (k + 1))
            for k in range(min(topk, 3))
        ]


def make_frontend(engine=None, **kwargs):
    snapshot = IndexSnapshot(tiny_index(), engine=engine)
    service = SearchService(snapshot, workers=1, max_inflight=64)
    kwargs.setdefault("own_service", True)
    return AsyncSearchFrontend(service, **kwargs)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout
    while not predicate():
        if time.perf_counter() > deadline:
            pytest.fail("condition not reached in time")
        time.sleep(0.001)


class TestDifferentialIdentity:
    def test_frontend_answers_match_direct_service(self):
        snapshot = IndexSnapshot(tiny_index())
        direct = SearchService(snapshot, workers=1)
        service = SearchService(snapshot, workers=1)
        frontend = AsyncSearchFrontend(service, own_service=True)
        try:
            for text in ("alpha", "alpha AND bravo", "alpha AND NOT charlie",
                         "bravo OR charlie"):
                served = frontend.query(text)
                reference = direct.query(text)
                assert served.paths == reference.paths
                assert served.generation == reference.generation
                assert not served.coalesced
        finally:
            frontend.close()
            direct.close()


class TestSingleFlight:
    def test_burst_coalesces_onto_one_evaluation(self):
        gate = threading.Event()
        engine = StubEngine(gate)
        frontend = make_frontend(engine, workers=1, batch_window=0.0)
        try:
            leader = frontend.submit("alpha AND bravo")
            # Leader admitted and held in evaluation by the gate.
            wait_until(lambda: frontend.stats()["frontend.inflight"] == 1)
            followers = [
                frontend.submit("alpha  AND   bravo")  # same normalized key
                for _ in range(4)
            ]
            wait_until(
                lambda: frontend.stats()["frontend.coalesced"] == 4
            )
            gate.set()
            lead_result = leader.result(timeout=10)
            for follower in followers:
                result = follower.result(timeout=10)
                assert result.paths == lead_result.paths
                assert result.generation == lead_result.generation
                assert result.coalesced
            assert not lead_result.coalesced
            stats = frontend.stats()
            assert stats["frontend.submitted"] == 5
            assert stats["frontend.served"] == 5
            assert stats["frontend.evaluations"] == 1
            assert stats["frontend.coalesced"] == 4
            assert engine.calls == [("bool", "alpha AND bravo")]
        finally:
            frontend.close()

    def test_single_flight_disabled_evaluates_every_query(self):
        engine = StubEngine()
        frontend = make_frontend(engine, single_flight=False)
        try:
            for _ in range(3):
                frontend.query("alpha AND bravo")
            stats = frontend.stats()
            assert stats["frontend.evaluations"] == 3
            assert stats["frontend.coalesced"] == 0
        finally:
            frontend.close()

    def test_bm25_never_satisfies_a_boolean_waiter(self):
        gate = threading.Event()
        engine = StubEngine(gate)
        frontend = make_frontend(engine, workers=2)
        try:
            ranked = frontend.submit("alpha", rank="bm25", topk=3)
            boolean = frontend.submit("alpha", rank="bool")
            wait_until(lambda: frontend.stats()["frontend.inflight"] == 2)
            gate.set()
            ranked_result = ranked.result(timeout=10)
            boolean_result = boolean.result(timeout=10)
            # Distinct keys -> no coalescing -> each mode's own answer.
            assert frontend.stats()["frontend.coalesced"] == 0
            assert all(p.startswith("bm25:") for p in ranked_result.paths)
            assert ranked_result.hits is not None
            assert all(p.startswith("bool:") for p in boolean_result.paths)
            assert boolean_result.hits is None
        finally:
            frontend.close()


class TestRegressions:
    def test_follower_elapsed_is_its_own_wait_not_leader_eval_time(self):
        # Regression: followers used to inherit the leader's QueryResult
        # verbatim, reporting the leader's evaluation time as their own.
        gate = threading.Event()
        engine = StubEngine(gate)
        frontend = make_frontend(engine, workers=1)
        try:
            leader = frontend.submit("alpha")
            wait_until(lambda: frontend.stats()["frontend.inflight"] == 1)
            time.sleep(0.15)  # leader evaluation drags on...
            follower = frontend.submit("alpha")
            wait_until(lambda: frontend.stats()["frontend.coalesced"] == 1)
            time.sleep(0.05)  # ...while the follower waits only this long
            gate.set()
            lead_result = leader.result(timeout=10)
            follow_result = follower.result(timeout=10)
            # The leader really did evaluate for ~0.2 s.
            assert lead_result.elapsed_s >= 0.18
            # The follower only waited ~0.05 s and must report that.
            assert follow_result.coalesced
            assert follow_result.elapsed_s < lead_result.elapsed_s
            assert 0.04 <= follow_result.elapsed_s < 0.15
        finally:
            frontend.close()

    def test_admission_shed_counts_each_caller_exactly_once(self):
        # Regression: a leader that passed single-flight and was then
        # rejected at batch admission was double-counted on the shed
        # counter (once at registration cleanup, once at resolution).
        gate = threading.Event()
        engine = StubEngine(gate)
        frontend = make_frontend(
            engine, workers=1, max_inflight=1, batch_window=0.3
        )
        try:
            blocker = frontend.submit("alpha")  # fills the only budget slot
            wait_until(lambda: frontend.stats()["frontend.inflight"] == 1)
            leader = frontend.submit("bravo")       # passes single-flight,
            follower = frontend.submit("bravo")     # coalesces onto it
            wait_until(lambda: frontend.stats()["frontend.coalesced"] == 1)
            # The batch window expires with the budget still full: the
            # leader and its follower are shed together.
            with pytest.raises(ServiceOverloadedError):
                leader.result(timeout=10)
            with pytest.raises(ServiceOverloadedError):
                follower.result(timeout=10)
            gate.set()
            blocker.result(timeout=10)
            stats = frontend.stats()
            assert stats["frontend.shed"] == 2  # one per caller, not 3/4
            assert stats["frontend.served"] == 3
            assert stats["frontend.evaluations"] == 1
            assert stats["frontend.shed_rate"] == pytest.approx(2 / 3)
        finally:
            frontend.close()


class TestErrorsAndLifecycle:
    def test_parse_error_travels_on_the_ticket(self):
        frontend = make_frontend()
        try:
            with pytest.raises(ParseError):
                frontend.query("AND AND")
            # The frontend survives a bad query.
            assert frontend.query("alpha").paths
        finally:
            frontend.close()

    def test_submit_after_close_raises(self):
        frontend = make_frontend()
        frontend.close()
        with pytest.raises(ServiceClosedError):
            frontend.submit("alpha")
        assert frontend.closed

    def test_invalid_arguments_raise(self):
        frontend = make_frontend()
        try:
            with pytest.raises(ValueError):
                frontend.submit("alpha", rank="pagerank")
        finally:
            frontend.close()
        snapshot = IndexSnapshot(tiny_index())
        service = SearchService(snapshot, workers=1)
        try:
            with pytest.raises(ValueError):
                AsyncSearchFrontend(service, workers=0)
            with pytest.raises(ValueError):
                AsyncSearchFrontend(service, batch_window=-0.1)
            with pytest.raises(ValueError):
                AsyncSearchFrontend(service, max_inflight=0)
        finally:
            service.close()

    def test_context_manager_closes_owned_service(self):
        snapshot = IndexSnapshot(tiny_index())
        service = SearchService(snapshot, workers=1)
        with AsyncSearchFrontend(service, own_service=True) as frontend:
            assert frontend.query("alpha").paths
        assert frontend.closed
        with pytest.raises(ServiceClosedError):
            service.query("alpha")

    def test_result_timeout(self):
        gate = threading.Event()
        frontend = make_frontend(StubEngine(gate))
        try:
            ticket = frontend.submit("alpha")
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.05)
            gate.set()
            assert ticket.result(timeout=10).paths
        finally:
            frontend.close()


class TestAsyncioFace:
    def test_gather_with_duplicates(self):
        frontend = make_frontend(StubEngine(), workers=2)

        async def drive():
            return await asyncio.gather(*[
                frontend.query_async("alpha AND bravo")
                for _ in range(8)
            ])

        try:
            results = asyncio.run(drive())
            assert len(results) == 8
            expected = results[0].paths
            assert all(r.paths == expected for r in results)
        finally:
            frontend.close()

    def test_async_parse_error_raises_in_caller(self):
        frontend = make_frontend()

        async def drive():
            with pytest.raises(ParseError):
                await frontend.query_async("AND AND")

        try:
            asyncio.run(drive())
        finally:
            frontend.close()
