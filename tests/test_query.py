"""Tests for the query parser and evaluator."""

import pytest

from repro.index import InvertedIndex, MultiIndex
from repro.query import And, Not, Or, ParseError, QueryEngine, Term, parse_query
from repro.text import TermBlock


class TestParser:
    def test_single_term(self):
        assert parse_query("cat") == Term("cat")

    def test_lowercases_terms(self):
        assert parse_query("CaT") == Term("cat")

    def test_and(self):
        assert parse_query("cat AND dog") == And((Term("cat"), Term("dog")))

    def test_implicit_and(self):
        assert parse_query("cat dog") == And((Term("cat"), Term("dog")))

    def test_or(self):
        assert parse_query("cat OR dog") == Or((Term("cat"), Term("dog")))

    def test_not(self):
        assert parse_query("NOT cat") == Not(Term("cat"))

    def test_double_negation(self):
        assert parse_query("NOT NOT cat") == Not(Not(Term("cat")))

    def test_precedence_not_over_and_over_or(self):
        query = parse_query("a OR b AND NOT c")
        assert query == Or((Term("a"), And((Term("b"), Not(Term("c"))))))

    def test_parentheses(self):
        query = parse_query("(a OR b) AND c")
        assert query == And((Or((Term("a"), Term("b"))), Term("c")))

    def test_operators_case_insensitive(self):
        assert parse_query("a and b") == And((Term("a"), Term("b")))
        assert parse_query("a or b") == Or((Term("a"), Term("b")))
        assert parse_query("not a") == Not(Term("a"))

    def test_terms_collects_all(self):
        query = parse_query("a AND (b OR NOT c)")
        assert query.terms() == frozenset({"a", "b", "c"})

    def test_str_round_trippable(self):
        query = parse_query("a AND (b OR c)")
        assert parse_query(str(query)) == query

    @pytest.mark.parametrize(
        "bad",
        ["", "AND", "a AND", "(a", "a)", "()", "a AND OR b", "NOT"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)


def make_index():
    index = InvertedIndex()
    index.add_block(TermBlock("f1", ("cat", "dog")))
    index.add_block(TermBlock("f2", ("cat", "fish")))
    index.add_block(TermBlock("f3", ("dog",)))
    return index


UNIVERSE = ["f1", "f2", "f3"]


class TestEvaluator:
    @pytest.fixture
    def engine(self):
        return QueryEngine(make_index(), universe=UNIVERSE)

    def test_term(self, engine):
        assert engine.search("cat") == ["f1", "f2"]

    def test_missing_term(self, engine):
        assert engine.search("unicorn") == []

    def test_and(self, engine):
        assert engine.search("cat AND dog") == ["f1"]

    def test_or(self, engine):
        assert engine.search("cat OR dog") == ["f1", "f2", "f3"]

    def test_not(self, engine):
        assert engine.search("NOT cat") == ["f3"]

    def test_and_not(self, engine):
        assert engine.search("dog AND NOT cat") == ["f3"]

    def test_nested(self, engine):
        assert engine.search("(cat OR dog) AND NOT fish") == ["f1", "f3"]

    def test_not_without_universe_rejected(self):
        engine = QueryEngine(make_index())
        with pytest.raises(ValueError):
            engine.search("NOT cat")

    def test_queries_case_insensitive(self, engine):
        assert engine.search("CAT") == ["f1", "f2"]

    def test_results_sorted(self, engine):
        assert engine.search("cat OR dog OR fish") == sorted(
            engine.search("cat OR dog OR fish")
        )


class TestMultiIndexEvaluation:
    @pytest.fixture
    def multi_engine(self):
        r1 = InvertedIndex()
        r1.add_block(TermBlock("f1", ("cat", "dog")))
        r2 = InvertedIndex()
        r2.add_block(TermBlock("f2", ("cat", "fish")))
        r2.add_block(TermBlock("f3", ("dog",)))
        return QueryEngine(MultiIndex([r1, r2]), universe=UNIVERSE)

    def test_union_across_replicas(self, multi_engine):
        assert multi_engine.search("cat") == ["f1", "f2"]

    def test_parallel_matches_sequential(self, multi_engine):
        for query in ("cat", "cat AND dog", "cat OR dog", "NOT fish"):
            assert multi_engine.search(query, parallel=True) == multi_engine.search(
                query
            )

    def test_parallel_on_single_index_falls_back(self):
        engine = QueryEngine(make_index(), universe=UNIVERSE)
        assert engine.search("cat", parallel=True) == ["f1", "f2"]


class TestEngineIntegration:
    def test_search_over_built_index(self, tiny_fs, tiny_reference_index):
        from repro.engine import Implementation, IndexGenerator, ThreadConfig

        report = IndexGenerator(tiny_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        universe = [ref.path for ref in tiny_fs.list_files()]
        engine = QueryEngine(report.index, universe=universe)
        term, paths = next(iter(tiny_reference_index.items()))
        assert engine.search(term) == sorted(paths)
        assert engine.search(f"NOT {term}") == sorted(set(universe) - paths)
