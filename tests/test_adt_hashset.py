"""Tests for FnvHashSet."""

from repro.adt import FnvHashSet


class TestBasicOperations:
    def test_empty(self):
        s = FnvHashSet()
        assert len(s) == 0
        assert not s
        assert "x" not in s

    def test_add_returns_new_flag(self):
        s = FnvHashSet()
        assert s.add("x") is True
        assert s.add("x") is False
        assert len(s) == 1

    def test_contains(self):
        s = FnvHashSet(["a", "b"])
        assert "a" in s and "b" in s and "c" not in s

    def test_discard(self):
        s = FnvHashSet(["a"])
        assert s.discard("a") is True
        assert s.discard("a") is False
        assert len(s) == 0

    def test_construct_with_duplicates(self):
        s = FnvHashSet(["a", "a", "b"])
        assert len(s) == 2

    def test_bytes_elements(self):
        s = FnvHashSet()
        s.add(b"raw")
        assert b"raw" in s

    def test_clear(self):
        s = FnvHashSet(str(i) for i in range(100))
        s.clear()
        assert len(s) == 0
        assert s.bucket_count == 16

    def test_iteration_yields_all(self):
        elements = {f"e{i}" for i in range(50)}
        s = FnvHashSet(elements)
        assert set(s) == elements

    def test_repr_mentions_size(self):
        assert "size=2" in repr(FnvHashSet(["a", "b"]))


class TestSetAlgebra:
    def test_union(self):
        s = FnvHashSet(["a", "b"]).union(["b", "c"])
        assert set(s) == {"a", "b", "c"}

    def test_union_leaves_operands_unchanged(self):
        a = FnvHashSet(["a"])
        b = FnvHashSet(["b"])
        a.union(b)
        assert set(a) == {"a"} and set(b) == {"b"}

    def test_intersection(self):
        a = FnvHashSet(["a", "b", "c"])
        b = FnvHashSet(["b", "c", "d"])
        assert set(a.intersection(b)) == {"b", "c"}

    def test_intersection_commutes(self):
        a = FnvHashSet(["a", "b", "c"])
        b = FnvHashSet(["b"])
        assert a.intersection(b) == b.intersection(a)

    def test_equality(self):
        assert FnvHashSet(["a", "b"]) == FnvHashSet(["b", "a"])
        assert FnvHashSet(["a"]) != FnvHashSet(["a", "b"])

    def test_equality_with_non_set(self):
        assert FnvHashSet() != "not a set"


class TestGrowth:
    def test_grows_and_keeps_elements(self):
        s = FnvHashSet()
        for i in range(1000):
            s.add(f"element{i}")
        assert len(s) == 1000
        assert s.bucket_count >= 1024
        assert all(f"element{i}" in s for i in range(0, 1000, 97))
