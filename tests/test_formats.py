"""Tests for the document-format subsystem."""

import pytest

from repro.formats import (
    CsvFormat,
    DoczFormat,
    FormatRegistry,
    HtmlFormat,
    MarkdownFormat,
    PlainTextFormat,
    default_registry,
    extract_csv_text,
    read_docz,
    strip_html,
    strip_markdown,
    write_docz,
)
from repro.formats.csvfmt import parse_csv
from repro.text import Tokenizer


class TestRegistry:
    @pytest.fixture
    def registry(self):
        return default_registry()

    def test_detect_by_extension(self, registry):
        assert registry.detect("a/b/page.html").name == "html"
        assert registry.detect("notes.md").name == "markdown"
        assert registry.detect("data.csv").name == "csv"
        assert registry.detect("report.docz").name == "docz"
        assert registry.detect("readme.txt").name == "plain"

    def test_extension_case_insensitive(self, registry):
        assert registry.detect("PAGE.HTML").name == "html"

    def test_unknown_extension_falls_back_to_plain(self, registry):
        assert registry.detect("archive.xyz").name == "plain"

    def test_no_extension_falls_back_to_plain(self, registry):
        assert registry.detect("Makefile").name == "plain"

    def test_magic_detection_for_misnamed_files(self, registry):
        assert registry.detect("misnamed", b"<!DOCTYPE html><html>").name == "html"
        assert registry.detect("misnamed", b"DOCZ\x01rest").name == "docz"

    def test_extension_beats_magic(self, registry):
        # A .txt file containing HTML is indexed as text (desktop-search
        # convention: the user named it).
        assert registry.detect("page.txt", b"<!DOCTYPE html>").name == "plain"

    def test_by_name(self, registry):
        assert registry.by_name("csv").name == "csv"
        with pytest.raises(KeyError):
            registry.by_name("pdf")

    def test_duplicate_extension_rejected(self):
        with pytest.raises(ValueError):
            FormatRegistry(
                [PlainTextFormat(), PlainTextFormat()], PlainTextFormat()
            )

    def test_extract_text_one_step(self, registry):
        text = registry.extract_text("f.html", b"<p>hello</p>")
        assert b"hello" in text


class TestHtml:
    def test_strips_tags(self):
        assert strip_html(b"<p>hello <b>world</b></p>").split() == [
            b"hello", b"world",
        ]

    def test_tags_separate_words(self):
        # "a</b>b" must not merge into one term.
        tokens = Tokenizer(min_length=1).tokenize(strip_html(b"a<b>b</b>"))
        assert tokens == ["a", "b"]

    def test_script_content_dropped(self):
        text = strip_html(b"<script>var secret = 1;</script><p>visible</p>")
        assert b"secret" not in text
        assert b"visible" in text

    def test_style_content_dropped(self):
        text = strip_html(b"<style>p { color: red }</style>text")
        assert b"red" not in text
        assert b"text" in text

    def test_entities_decoded(self):
        assert strip_html(b"a&amp;b &lt;x&gt; &quot;q&quot;") == b'a&b <x> "q"'

    def test_numeric_entities(self):
        assert strip_html(b"&#65;&#x42;") == b"AB"

    def test_unknown_entity_kept(self):
        assert b"&bogus;" in strip_html(b"&bogus;")

    def test_unterminated_tag_dropped(self):
        assert strip_html(b"before<div unterminated") == b"before"

    def test_attributes_not_indexed(self):
        text = strip_html(b'<a href="http://example.com/secret">label</a>')
        assert b"secret" not in text
        assert b"label" in text

    def test_self_closing_script(self):
        text = strip_html(b'<script src="x.js"/>after')
        assert b"after" in text

    def test_magic_variants(self):
        fmt = HtmlFormat()
        assert fmt.matches_magic(b"  <!DOCTYPE html>")
        assert fmt.matches_magic(b"<html><body>")
        assert not fmt.matches_magic(b"plain text")


class TestMarkdown:
    def test_heading_hashes_removed(self):
        assert strip_markdown(b"## Heading Text").strip() == b"Heading Text"

    def test_emphasis_markers_removed(self):
        text = strip_markdown(b"some *bold* and _em_ words")
        assert b"*" not in text and b"_" not in text
        assert b"bold" in text and b"em" in text

    def test_link_label_kept_target_dropped(self):
        text = strip_markdown(b"see [the docs](http://example.com/hidden)")
        assert b"the docs" in text
        assert b"hidden" not in text

    def test_image_target_dropped(self):
        text = strip_markdown(b"![alt text](img.png)")
        assert b"alt text" in text
        assert b"img.png" not in text

    def test_code_fence_dropped(self):
        text = strip_markdown(b"before\n```\ncode_here()\n```\nafter")
        assert b"code_here" not in text
        assert b"before" in text and b"after" in text

    def test_list_bullets_removed(self):
        text = strip_markdown(b"- item one\n* item two")
        assert b"item one" in text and b"item two" in text
        assert not text.lstrip().startswith(b"-")

    def test_blockquote_marker_removed(self):
        assert strip_markdown(b"> quoted words").strip() == b"quoted words"


class TestCsv:
    def test_simple_rows(self):
        assert parse_csv(b"a,b\nc,d") == [[b"a", b"b"], [b"c", b"d"]]

    def test_quoted_field_with_comma(self):
        assert parse_csv(b'"a,b",c') == [[b"a,b", b"c"]]

    def test_doubled_quotes(self):
        assert parse_csv(b'"say ""hi""",x') == [[b'say "hi"', b"x"]]

    def test_crlf(self):
        assert parse_csv(b"a,b\r\nc,d\r\n") == [[b"a", b"b"], [b"c", b"d"]]

    def test_quoted_newline_preserved(self):
        assert parse_csv(b'"line1\nline2",x') == [[b"line1\nline2", b"x"]]

    def test_extract_text_joins_cells(self):
        assert extract_csv_text(b"a,b\nc,d") == b"a b\nc d"

    def test_empty_input(self):
        assert parse_csv(b"") == []


class TestDocz:
    def test_round_trip(self):
        runs = [(0, b"plain run"), (1, b"bold run"), (7, b"styled")]
        metadata = {"author": "tester", "title": "demo"}
        blob = write_docz(runs, metadata)
        read_metadata, read_runs = read_docz(blob)
        assert read_metadata == metadata
        assert read_runs == runs

    def test_empty_document(self):
        blob = write_docz([])
        metadata, runs = read_docz(blob)
        assert metadata == {} and runs == []

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_docz(b"NOTDOCZ")

    def test_truncated_body_tolerated(self):
        blob = write_docz([(0, b"first"), (0, b"second")])
        metadata, runs = read_docz(blob[:-10])
        assert runs and runs[0] == (0, b"first")

    def test_style_flags_validated(self):
        with pytest.raises(ValueError):
            write_docz([(256, b"x")])

    def test_extract_text_includes_runs_and_metadata(self):
        blob = write_docz([(0, b"body words")], {"title": "metaword"})
        text = DoczFormat().extract_text(blob)
        assert b"body words" in text
        assert b"metaword" in text

    def test_extract_garbage_returns_empty(self):
        assert DoczFormat().extract_text(b"garbage") == b""


class TestFormatTotality:
    """extract_text must never raise, whatever the bytes."""

    GARBAGE = [
        b"",
        b"\x00\xff" * 100,
        b"<<<<>>>>&&&;;;",
        b'"""unclosed',
        b"DOCZ\x01\xff\xff",
        bytes(range(256)),
    ]

    @pytest.mark.parametrize(
        "fmt",
        [PlainTextFormat(), HtmlFormat(), MarkdownFormat(), CsvFormat(),
         DoczFormat()],
        ids=lambda f: f.name,
    )
    def test_never_raises(self, fmt):
        for garbage in self.GARBAGE:
            if fmt.name == "docz":
                fmt.extract_text(garbage)  # ValueError handled internally
            else:
                fmt.extract_text(garbage)
