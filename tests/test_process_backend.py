"""Tests for the multiprocessing "Join Forces" backend.

The tests run real worker processes over the in-memory tiny corpus
(:class:`FilesystemSpec` carries the VFS by value) and over a real
on-disk directory, and always pass ``oversubscribe=True`` so they stay
deterministic on single-CPU CI boxes.
"""

import pytest

from repro.engine import (
    Implementation,
    IndexGenerator,
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    SequentialIndexer,
    ThreadConfig,
    validate_worker_count,
)
from repro.engine.procworker import (
    FilesystemSpec,
    TokenizerSpec,
    WorkerBatch,
    build_replica,
)
from repro.index.binfmt import WIRE_MAGIC, dump_index_bytes
from repro.extract import AsciiExtractor
from repro.text import Tokenizer

IMPL2 = Implementation.REPLICATED_JOINED


def _canonical(index) -> bytes:
    return dump_index_bytes(index)


class TestConfigValidation:
    def test_backend_round_trips(self):
        config = ThreadConfig(4, 0, 1, backend="process")
        assert config.backend == "process"
        assert str(config) == "(4, 0, 1)[process]"
        assert config.with_backend("thread").backend == "thread"
        assert config.with_backend("process") is config

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ThreadConfig(2, 0, 1, backend="greenlet")

    def test_process_backend_is_impl2_only(self):
        config = ThreadConfig(2, 0, 0, backend="process")
        with pytest.raises(ValueError, match="Implementation 2"):
            config.validate_for(Implementation.SHARED_LOCKED)
        with pytest.raises(ValueError, match="Implementation 2"):
            config.validate_for(Implementation.REPLICATED_UNJOINED)

    def test_process_backend_rejects_updaters(self):
        with pytest.raises(ValueError, match="y must be 0"):
            ThreadConfig(2, 2, 1, backend="process").validate_for(IMPL2)

    def test_bool_worker_counts_rejected(self):
        with pytest.raises(TypeError):
            ThreadConfig(True)

    def test_worker_count_validation(self):
        validate_worker_count(2, cpus=4)
        with pytest.raises(ValueError, match="at least 1"):
            validate_worker_count(0, cpus=4)
        with pytest.raises(TypeError):
            validate_worker_count(2.0, cpus=4)

    def test_pool_larger_than_cpus_rejected(self):
        with pytest.raises(ValueError, match="oversubscribe"):
            validate_worker_count(8, cpus=4)

    def test_oversubscribe_lifts_cpu_cap(self):
        validate_worker_count(8, oversubscribe=True, cpus=4)

    def test_indexer_enforces_cpu_cap(self, tiny_fs, monkeypatch):
        import repro.engine.procbackend as procbackend

        monkeypatch.setattr(procbackend, "available_cpus", lambda: 2)
        indexer = ProcessReplicatedIndexer(tiny_fs)
        with pytest.raises(ValueError, match="2 CPU"):
            indexer.build(ThreadConfig(3, 0, 1, backend="process"))

    def test_rejects_dynamic_acquisition(self, tiny_fs):
        with pytest.raises(ValueError, match="dynamic"):
            ProcessReplicatedIndexer(tiny_fs, dynamic="steal")

    def test_rejects_unknown_start_method(self, tiny_fs):
        with pytest.raises(ValueError, match="start method"):
            ProcessReplicatedIndexer(tiny_fs, start_method="teleport")


class TestWorkerBoundary:
    def test_tokenizer_spec_round_trip(self):
        # the legacy spelling; deprecated in favour of extractor.spec()
        tokenizer = Tokenizer(min_length=3, max_length=9, stopwords=("the",))
        with pytest.warns(DeprecationWarning, match="ExtractorSpec"):
            rebuilt = TokenizerSpec.from_tokenizer(tokenizer).build()
        assert rebuilt.min_length == 3
        assert rebuilt.max_length == 9
        assert rebuilt.stopwords == frozenset({"the"})

    def test_filesystem_spec_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            FilesystemSpec()
        with pytest.raises(ValueError):
            FilesystemSpec(base="/corpus", snapshot=object())

    def test_filesystem_spec_rejects_non_filesystem(self):
        with pytest.raises(TypeError):
            FilesystemSpec.from_filesystem(object())

    def test_batch_pickles_and_builds(self, tiny_fs):
        import pickle

        paths = tuple(ref.path for ref in tiny_fs.list_files())[:5]
        batch = WorkerBatch(
            fs=FilesystemSpec.from_filesystem(tiny_fs), paths=paths
        )
        batch = pickle.loads(pickle.dumps(batch))
        result = build_replica(batch)
        assert result.file_count == 5
        assert result.replica.startswith(WIRE_MAGIC)
        assert result.elapsed >= 0.0


class TestProcessBuild:
    def test_build_over_virtual_fs(self, tiny_fs, tiny_reference_index):
        report = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True).build(
            ThreadConfig(2, 0, 1, backend="process")
        )
        assert report.file_count == len(list(tiny_fs.list_files()))
        assert report.term_count == len(tiny_reference_index)
        for term, expected in list(tiny_reference_index.items())[:50]:
            assert set(report.index.lookup(term)) == expected

    def test_build_over_real_fs(self, tiny_fs, tmp_path):
        from repro.corpus import materialize
        from repro.fsmodel import OsFileSystem

        destination = str(tmp_path / "corpus")
        materialize(tiny_fs, destination)
        fs = OsFileSystem(destination)
        report = ProcessReplicatedIndexer(fs, oversubscribe=True).build(
            ThreadConfig(2, 0, 1, backend="process")
        )
        reference = ReplicatedJoinedIndexer(fs).build(ThreadConfig(2, 0, 1))
        assert _canonical(report.index) == _canonical(reference.index)

    def test_report_timings(self, tiny_fs):
        report = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True).build(
            ThreadConfig(2, 0, 1, backend="process")
        )
        assert report.config.backend == "process"
        assert len(report.extractor_times) == 2
        # Extraction and update are fused inside each worker; the fused
        # phase is attributed to extraction only, never counted twice.
        assert report.timings.extraction > 0.0
        assert report.timings.update == 0.0
        assert report.timings.join >= 0.0

    def test_total_does_not_double_count_fused_phase(self, tiny_fs):
        # Regression: pool time was once reported as both extraction and
        # update, so timings.total exceeded the wall time by a full
        # parallel phase.  Every stage is measured inside the build, so
        # their sum must stay within wall-time-sane bounds.
        report = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True).build(
            ThreadConfig(2, 0, 1, backend="process")
        )
        assert report.timings.total <= report.wall_time * 1.05 + 1e-6

    def test_joiner_tree_path(self, tiny_fs):
        flat = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True).build(
            ThreadConfig(4, 0, 1, backend="process")
        )
        tree = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True).build(
            ThreadConfig(4, 0, 2, backend="process")
        )
        assert _canonical(flat.index) == _canonical(tree.index)

    def test_runner_dispatches_on_backend(self, tiny_fs):
        generator = IndexGenerator(tiny_fs, oversubscribe=True)
        threaded = generator.build(IMPL2, ThreadConfig(2, 0, 1))
        process = generator.build(
            IMPL2, ThreadConfig(2, 0, 1, backend="process")
        )
        assert process.config.backend == "process"
        assert _canonical(process.index) == _canonical(threaded.index)

    def test_format_registry_crosses_boundary(self, tmp_path):
        from repro.formats import default_registry
        from repro.fsmodel import OsFileSystem

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "page.html").write_bytes(
            b"<html><body>hidden <b>gem</b></body></html>"
        )
        (corpus / "note.txt").write_bytes(b"plain gem")
        fs = OsFileSystem(str(corpus))
        report = ProcessReplicatedIndexer(
            fs, extractor=AsciiExtractor(registry=default_registry()),
            oversubscribe=True,
        ).build(ThreadConfig(2, 0, 1, backend="process"))
        assert sorted(report.index.lookup("gem")) == ["note.txt", "page.html"]
        assert not report.index.lookup("body")


class TestMergeEquivalence:
    """Sequential, threaded Implementation 2, and the process backend
    must all serialize to byte-identical canonical indices."""

    @pytest.fixture(scope="class")
    def sequential_bytes(self, tiny_fs):
        report = SequentialIndexer(tiny_fs, naive=False).build()
        return _canonical(report.index)

    def test_naive_sequential_matches(self, tiny_fs, sequential_bytes):
        report = SequentialIndexer(tiny_fs, naive=True).build()
        assert _canonical(report.index) == sequential_bytes

    # x=1 is rejected (single-replica degenerate case), so start at 2.
    @pytest.mark.parametrize("workers", [2, 3, 4, 5])
    def test_process_matches_sequential(
        self, tiny_fs, sequential_bytes, workers
    ):
        # Each worker count is a different batch permutation; the
        # canonical serialization must not depend on it.
        report = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True).build(
            ThreadConfig(workers, 0, 1, backend="process")
        )
        assert _canonical(report.index) == sequential_bytes

    @pytest.mark.parametrize("config", [
        ThreadConfig(2, 0, 1),
        ThreadConfig(3, 2, 1),
        ThreadConfig(4, 0, 2),
    ])
    def test_threaded_impl2_matches_sequential(
        self, tiny_fs, sequential_bytes, config
    ):
        report = ReplicatedJoinedIndexer(tiny_fs).build(config)
        assert _canonical(report.index) == sequential_bytes


class TestProcessBackendCli:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tiny_fs, tmp_path_factory):
        from repro.corpus import materialize

        destination = str(tmp_path_factory.mktemp("proccli") / "corpus")
        materialize(tiny_fs, destination)
        return destination

    def test_index_with_process_backend(self, corpus_dir, tmp_path, capsys):
        from repro.cli import main
        from repro.index import load_index_binary

        save = str(tmp_path / "out.ridx")
        assert main([
            "index", corpus_dir, "--backend", "process", "-x", "2",
            "--oversubscribe", "--save", save, "--binary",
        ]) == 0
        output = capsys.readouterr().out
        assert "Implementation 2" in output
        assert "[process]" in output
        assert len(load_index_binary(save)) > 0

    def test_cli_defaults_resolve_per_backend(self, corpus_dir, capsys):
        from repro.cli import main

        assert main(["index", corpus_dir, "--backend", "process", "-x", "2",
                     "--oversubscribe"]) == 0
        assert "(2, 0, 1)[process]" in capsys.readouterr().out
        assert main(["index", corpus_dir]) == 0
        assert "Implementation 3 (3, 2, 0)" in capsys.readouterr().out

    def test_cli_rejects_updaters_with_process(self, corpus_dir, capsys):
        from repro.cli import main

        assert main(["index", corpus_dir, "--backend", "process", "-x", "2",
                     "-y", "2", "--oversubscribe"]) == 2
        assert "y must be 0" in capsys.readouterr().err

    def test_cli_rejects_zero_extractors_cleanly(self, corpus_dir, capsys):
        # A bad tuple must exit 2 with an error line, not a traceback.
        from repro.cli import main

        assert main(["index", corpus_dir, "-x", "0"]) == 2
        assert "at least one extractor" in capsys.readouterr().err

    def test_cli_enforces_cpu_cap(self, corpus_dir, capsys):
        from repro.cli import main

        assert main(["index", corpus_dir, "--backend", "process",
                     "-x", "4096"]) == 2
        assert "oversubscribe" in capsys.readouterr().err


class TestAutotuneSpace:
    def test_process_space_is_two_dimensional(self):
        from repro.autotune import ConfigurationSpace

        space = ConfigurationSpace(
            IMPL2, max_extractors=4, max_updaters=6, max_joiners=2,
            backend="process",
        )
        configs = space.configurations()
        assert configs
        assert all(c.backend == "process" for c in configs)
        assert all(c.updaters == 0 for c in configs)
        # x in 2..4 (x=1 degenerates to one replica), z in 1..2.
        assert len(configs) == 6

    def test_process_space_rejects_other_implementations(self):
        from repro.autotune import ConfigurationSpace

        with pytest.raises(ValueError, match="Implementation 2"):
            ConfigurationSpace(
                Implementation.SHARED_LOCKED, backend="process"
            )

    def test_contains_checks_backend(self):
        from repro.autotune import ConfigurationSpace

        thread_space = ConfigurationSpace(IMPL2)
        process_space = ConfigurationSpace(IMPL2, backend="process")
        assert thread_space.contains(ThreadConfig(3, 2, 1))
        assert not thread_space.contains(
            ThreadConfig(3, 0, 1, backend="process")
        )
        assert process_space.contains(ThreadConfig(3, 0, 1, backend="process"))
        assert not process_space.contains(ThreadConfig(3, 2, 1))

    def test_neighbours_preserve_backend(self):
        from repro.autotune import ConfigurationSpace

        space = ConfigurationSpace(IMPL2, backend="process")
        config = ThreadConfig(3, 0, 1, backend="process")
        neighbours = space.neighbours(config)
        assert neighbours
        assert all(n.backend == "process" for n in neighbours)
        assert all(n.updaters == 0 for n in neighbours)
