"""Failure accounting: ``indexed_file_count`` must equal the number of
distinct paths that actually landed in the index.

The process backend's recovery ladder can touch one file more than once
(a batch errors, is split, and a half succeeds on retry).  Two
safeguards keep the report honest:

* :func:`repro.engine.faults.reconcile_failures` drops failure records
  for paths that ultimately succeeded and de-duplicates the rest;
* :attr:`~repro.engine.results.BuildReport.indexed_file_count` counts
  *distinct* failed paths, so a duplicate record can never make the
  index look smaller than it is.

The end-to-end tests drive crash/hang/error faults through the process
backend and pin the invariant against the index's real path universe.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    ProcessReplicatedIndexer,
    SequentialIndexer,
    ThreadConfig,
)
from repro.engine.faults import FileFailure, reconcile_failures
from repro.engine.results import BuildReport, Implementation
from repro.fsmodel import FaultInjectingFileSystem, FaultSpec

PROC_KW = dict(oversubscribe=True, max_retries=2, retry_backoff=0.0)


def failure(path, stage="read", error="boom"):
    return FileFailure(path=path, stage=stage, error=error,
                       error_type="OSError")


# -- reconcile_failures ------------------------------------------------


class TestReconcileFailures:
    def test_keeps_genuine_failures_in_order(self):
        failures = [failure("a"), failure("b")]
        assert reconcile_failures(failures, set()) == failures

    def test_drops_paths_that_ultimately_succeeded(self):
        failures = [failure("a"), failure("b"), failure("c")]
        assert reconcile_failures(failures, {"b"}) == [
            failure("a"), failure("c")
        ]

    def test_deduplicates_by_path_first_record_wins(self):
        first = failure("a", stage="read")
        second = failure("a", stage="extract")
        assert reconcile_failures([first, second], set()) == [first]

    def test_empty_inputs(self):
        assert reconcile_failures([], set()) == []
        assert reconcile_failures([], {"a"}) == []


# -- indexed_file_count with duplicate records -------------------------


class TestIndexedFileCount:
    def make_report(self, failures):
        report = SequentialIndexer_fixture_report()
        return BuildReport(
            implementation=Implementation.SHARED_LOCKED,
            config=ThreadConfig(1, 0, 0),
            index=report.index,
            wall_time=1.0,
            file_count=10,
            failures=failures,
        )

    def test_counts_distinct_failed_paths_only(self):
        # The regression: two records for one path must not be
        # subtracted twice.
        duplicated = [failure("a"), failure("a", stage="extract")]
        report = self.make_report(duplicated)
        assert report.indexed_file_count == 9

    def test_plain_case_unchanged(self):
        report = self.make_report([failure("a"), failure("b")])
        assert report.indexed_file_count == 8


_CACHED_SEQ_REPORT = {}


def SequentialIndexer_fixture_report():
    """A tiny real index to satisfy BuildReport's index field."""
    if "report" not in _CACHED_SEQ_REPORT:
        from repro.fsmodel import VirtualFileSystem

        fs = VirtualFileSystem()
        fs.write_file("x.txt", b"tiny corpus")
        _CACHED_SEQ_REPORT["report"] = SequentialIndexer(fs).build()
    return _CACHED_SEQ_REPORT["report"]


# -- end-to-end: faults through the process backend --------------------


def indexed_paths(index) -> set:
    """The distinct paths actually present in the index's postings."""
    paths = set()
    for term in index.terms():
        paths.update(index.lookup(term))
    return paths


def pin_invariant(report, fs):
    """indexed_file_count == distinct successfully indexed paths."""
    listed = {ref.path for ref in fs.list_files()}
    in_index = indexed_paths(report.index)
    # every indexed path came from the listing, none indexed twice the
    # count, and the report's arithmetic matches reality
    assert in_index <= listed
    assert report.indexed_file_count == len(in_index)
    assert sorted(f.path for f in report.failures) == sorted(
        listed - in_index
    )
    # failure records are unique per path after reconciliation
    recorded = [f.path for f in report.failures]
    assert len(recorded) == len(set(recorded))


def victims_of(fs, count=1):
    paths = [ref.path for ref in fs.list_files()]
    return paths[:: max(1, len(paths) // count)][:count]


class TestProcessBackendAccounting:
    def test_skip_failures_counted_once(self, tiny_fs):
        victims = victims_of(tiny_fs, count=2)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {p: FaultSpec(exc_type=PermissionError) for p in victims},
        )
        indexer = ProcessReplicatedIndexer(fs, on_error="skip", **PROC_KW)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        pin_invariant(report, tiny_fs)

    def test_crash_retry_success_not_counted_failed(self, tiny_fs):
        # The file only crashes worker processes; the in-parent rung of
        # the recovery ladder indexes it.  A file that failed once but
        # succeeded on retry must not be in failures — and the count
        # must reflect the success.
        victims = victims_of(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {victims[0]: FaultSpec(action="crash", parent_action="pass")},
        )
        indexer = ProcessReplicatedIndexer(fs, on_error="skip", **PROC_KW)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.retries > 0
        assert report.failures == []
        assert report.indexed_file_count == report.file_count
        pin_invariant(report, tiny_fs)

    def test_crash_with_terminal_failure_counted_once(self, tiny_fs):
        victims = victims_of(tiny_fs, count=1)
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {victims[0]: FaultSpec(action="crash", parent_action="error")},
        )
        indexer = ProcessReplicatedIndexer(fs, on_error="skip", **PROC_KW)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.retries > 0
        assert [f.path for f in report.failures] == victims
        assert report.indexed_file_count == report.file_count - 1
        pin_invariant(report, tiny_fs)

    def test_mixed_faults_keep_count_honest(self, tiny_fs):
        paths = [ref.path for ref in tiny_fs.list_files()]
        transient, poisoned = paths[0], paths[len(paths) // 2]
        fs = FaultInjectingFileSystem(
            tiny_fs,
            {
                transient: FaultSpec(action="crash", parent_action="pass"),
                poisoned: FaultSpec(exc_type=PermissionError),
            },
        )
        indexer = ProcessReplicatedIndexer(fs, on_error="skip", **PROC_KW)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert [f.path for f in report.failures] == [poisoned]
        assert report.indexed_file_count == report.file_count - 1
        pin_invariant(report, tiny_fs)

    @pytest.mark.parametrize("backend", ("sequential", "process"))
    def test_clean_build_counts_everything(self, tiny_fs, backend):
        if backend == "sequential":
            report = SequentialIndexer(tiny_fs).build()
        else:
            indexer = ProcessReplicatedIndexer(tiny_fs, **PROC_KW)
            report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        assert report.failures == []
        assert report.indexed_file_count == report.file_count
        pin_invariant(report, tiny_fs)
