"""Tests for postings, the inverted index, joins, multi-index and
serialization."""

import pytest

from repro.index import (
    InvertedIndex,
    MultiIndex,
    PostingsList,
    join_indices,
    join_pairwise_tree,
    load_index,
    load_multi_index,
    merge_into,
    save_index,
    save_multi_index,
)
from repro.text import TermBlock


def block(path, *terms):
    return TermBlock(path, tuple(terms))


class TestPostingsList:
    def test_append_and_iterate(self):
        postings = PostingsList()
        postings.append("a")
        postings.append("b")
        assert list(postings) == ["a", "b"]
        assert len(postings) == 2

    def test_contains_linear_search(self):
        postings = PostingsList(["a", "b"])
        assert postings.contains("a")
        assert not postings.contains("z")

    def test_extend(self):
        a = PostingsList(["1"])
        a.extend(PostingsList(["2", "3"]))
        assert list(a) == ["1", "2", "3"]

    def test_equality_order_insensitive(self):
        assert PostingsList(["a", "b"]) == PostingsList(["b", "a"])
        assert PostingsList(["a"]) != PostingsList(["a", "b"])

    def test_paths_returns_copy(self):
        postings = PostingsList(["a"])
        paths = postings.paths()
        paths.append("b")
        assert list(postings) == ["a"]


class TestInvertedIndex:
    def test_add_block_and_lookup(self):
        index = InvertedIndex()
        index.add_block(block("f1", "cat", "dog"))
        index.add_block(block("f2", "cat"))
        assert sorted(index.lookup("cat")) == ["f1", "f2"]
        assert index.lookup("dog") == ["f1"]
        assert index.lookup("ghost") == []

    def test_counts(self):
        index = InvertedIndex()
        index.add_block(block("f1", "a", "b"))
        index.add_block(block("f2", "b"))
        assert len(index) == 2
        assert index.posting_count == 3
        assert index.block_count == 2

    def test_contains(self):
        index = InvertedIndex()
        index.add_block(block("f", "x"))
        assert "x" in index and "y" not in index

    def test_terms_iteration(self):
        index = InvertedIndex()
        index.add_block(block("f", "a", "b", "c"))
        assert sorted(index.terms()) == ["a", "b", "c"]

    def test_naive_update_deduplicates(self):
        index = InvertedIndex()
        assert index.add_term_naive("cat", "f1") is True
        assert index.add_term_naive("cat", "f1") is False
        assert index.lookup("cat") == ["f1"]

    def test_naive_and_en_bloc_agree(self):
        en_bloc = InvertedIndex()
        en_bloc.add_block(block("f1", "a", "b"))
        en_bloc.add_block(block("f2", "a"))
        naive = InvertedIndex()
        for term, path in [("a", "f1"), ("b", "f1"), ("a", "f1"), ("a", "f2")]:
            naive.add_term_naive(term, path)
        assert en_bloc == naive

    def test_equality(self):
        a = InvertedIndex()
        b = InvertedIndex()
        a.add_block(block("f", "x"))
        b.add_block(block("f", "x"))
        assert a == b
        b.add_block(block("g", "y"))
        assert a != b

    def test_repr(self):
        index = InvertedIndex()
        index.add_block(block("f", "x"))
        assert "terms=1" in repr(index)


class TestJoins:
    def make_replicas(self):
        r1 = InvertedIndex()
        r1.add_block(block("f1", "a", "b"))
        r2 = InvertedIndex()
        r2.add_block(block("f2", "b", "c"))
        r3 = InvertedIndex()
        r3.add_block(block("f3", "a"))
        return [r1, r2, r3]

    def expected(self):
        index = InvertedIndex()
        for b in (block("f1", "a", "b"), block("f2", "b", "c"), block("f3", "a")):
            index.add_block(b)
        return index

    def test_merge_into(self):
        r1, r2, _ = self.make_replicas()
        merged = merge_into(r1, r2)
        assert merged is r1
        assert sorted(merged.lookup("b")) == ["f1", "f2"]

    def test_join_indices(self):
        joined = join_indices(self.make_replicas())
        assert joined == self.expected()

    def test_join_preserves_block_count(self):
        joined = join_indices(self.make_replicas())
        assert joined.block_count == 3

    def test_join_empty(self):
        assert len(join_indices([])) == 0

    def test_pairwise_tree_single_thread(self):
        joined = join_pairwise_tree(self.make_replicas())
        assert joined == self.expected()

    def test_pairwise_tree_threaded(self):
        joined = join_pairwise_tree(self.make_replicas(), threads_per_level=2)
        assert joined == self.expected()

    def test_pairwise_tree_many_replicas(self):
        replicas = []
        expected = InvertedIndex()
        for i in range(9):
            b = block(f"f{i}", f"term{i}", "shared")
            replica = InvertedIndex()
            replica.add_block(b)
            replicas.append(replica)
            expected.add_block(b)
        assert join_pairwise_tree(replicas, threads_per_level=3) == expected

    def test_pairwise_tree_empty(self):
        assert len(join_pairwise_tree([])) == 0

    def test_pairwise_invalid_threads(self):
        with pytest.raises(ValueError):
            join_pairwise_tree(self.make_replicas(), threads_per_level=0)


class TestMultiIndex:
    def make(self):
        r1 = InvertedIndex()
        r1.add_block(block("f1", "a", "b"))
        r2 = InvertedIndex()
        r2.add_block(block("f2", "a"))
        return MultiIndex([r1, r2])

    def test_lookup_unions(self):
        assert sorted(self.make().lookup("a")) == ["f1", "f2"]

    def test_lookup_parallel_matches_sequential(self):
        multi = self.make()
        assert sorted(multi.lookup_parallel("a")) == sorted(multi.lookup("a"))

    def test_contains(self):
        multi = self.make()
        assert "b" in multi and "z" not in multi

    def test_len_distinct_terms(self):
        assert len(self.make()) == 2

    def test_posting_count(self):
        assert self.make().posting_count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiIndex([])

    def test_matches_joined(self):
        multi = self.make()
        joined = join_indices(multi.replicas)
        for term in ("a", "b"):
            assert sorted(multi.lookup(term)) == sorted(joined.lookup(term))


class TestSerialization:
    def make_index(self):
        index = InvertedIndex()
        index.add_block(block("f1", "alpha", "beta"))
        index.add_block(block("f2", "beta"))
        return index

    def test_round_trip(self, tmp_path):
        index = self.make_index()
        path = str(tmp_path / "test.idx")
        save_index(index, path)
        assert load_index(path) == index

    def test_block_count_preserved(self, tmp_path):
        path = str(tmp_path / "test.idx")
        save_index(self.make_index(), path)
        assert load_index(path).block_count == 2

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "junk.idx"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_index(str(path))

    def test_multi_round_trip(self, tmp_path):
        r1 = self.make_index()
        r2 = InvertedIndex()
        r2.add_block(block("f3", "gamma"))
        multi = MultiIndex([r1, r2])
        directory = str(tmp_path / "replicas")
        save_multi_index(multi, directory)
        loaded = load_multi_index(directory)
        assert len(loaded.replicas) == 2
        assert sorted(loaded.lookup("beta")) == ["f1", "f2"]
        assert loaded.lookup("gamma") == ["f3"]

    def test_multi_refuses_overwrite(self, tmp_path):
        directory = str(tmp_path / "replicas")
        save_multi_index(MultiIndex([self.make_index()]), directory)
        with pytest.raises(FileExistsError):
            save_multi_index(MultiIndex([self.make_index()]), directory)

    def test_multi_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_multi_index(str(tmp_path))
