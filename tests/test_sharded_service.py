"""The scatter-gather broker: merging, failure policy, composition.

Four claims under test, mirroring ``docs/sharded.md``:

1. the **differential gate** — a boolean query answered by the broker
   is byte-identical to the unsharded engine's answer, across the
   in-memory, RIDX2-off-mmap and process shard backends, for every
   operator the query language has (document partitioning commutes
   with per-document evaluation);
2. the **scoring contract** — sharded BM25 is the first K of the
   concatenated per-shard top-K lists under the documented
   ``(score desc, path asc)`` tie-break (a permutation-stable prefix
   of shard-local scores);
3. **dead shards** — killing a shard degrades or fails per the
   ``partial`` policy, with the ``shards_ok/shards_total`` health
   tuple on every result and a typed error, never a hang; the
   deterministic schedule sweep drives kill/close against in-flight
   queries across seeds and finds no race;
4. **composition** — the broker wears the service face, so the async
   frontend seats on top unchanged, with the topology scope folded
   into the cache key.
"""

from __future__ import annotations

import pytest

from repro.index.inverted import InvertedIndex
from repro.query.evaluator import QueryEngine
from repro.query.ranking import FrequencyIndex
from repro.schedcheck import (
    CooperativeScheduler,
    InstrumentedSyncProvider,
    Tracer,
    find_races,
    make_strategy,
)
from repro.service import (
    AsyncSearchFrontend,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardDeadError,
)
from repro.service.sharded import (
    ScatterGatherBroker,
    build_sharded_service,
    local_broker,
    partition_paths,
    shard_snapshots,
)
from repro.text.termblock import TermBlock

#: A corpus small enough to reason about, rich enough to make every
#: operator discriminate: overlapping terms, per-shard-unique terms,
#: shared prefixes, duplicate occurrences (tf > 1) and varied lengths.
DOCS = {
    "doc00.txt": "alpha beta gamma alpha alpha",
    "doc01.txt": "alpha delta",
    "doc02.txt": "beta gamma delta epsilon",
    "doc03.txt": "alpha beta",
    "doc04.txt": "gamma gamma gamma zeta",
    "doc05.txt": "delta epsilon zeta",
    "doc06.txt": "alpha epsilon",
    "doc07.txt": "beta zeta alpha beta",
    "doc08.txt": "gamma delta",
    "doc09.txt": "alphabet soup alpha",
    "doc10.txt": "epsilon",
    "doc11.txt": "zeta alpha delta gamma",
}

QUERIES = (
    "alpha",
    "nosuchterm",
    "alpha AND beta",
    "alpha OR epsilon",
    "NOT delta",
    "alpha AND NOT beta",
    "alph*",
    "(alpha OR zeta) AND NOT (gamma AND delta)",
)


def build_corpus(docs=DOCS):
    """(InvertedIndex, FrequencyIndex) over the doc dict."""
    index = InvertedIndex()
    frequencies = FrequencyIndex()
    for path in sorted(docs):
        words = docs[path].split()
        index.add_block(TermBlock(path, tuple(sorted(set(words)))))
        frequencies.add_document(path, words)
    return index, frequencies


def reference_engine(docs=DOCS):
    index, _ = build_corpus(docs)
    return QueryEngine(index, universe=frozenset(docs))


class TestPartitioning:
    def test_partition_is_a_disjoint_cover(self):
        parts = partition_paths(DOCS, 3)
        flat = [path for part in parts for path in part]
        assert sorted(flat) == sorted(DOCS)
        assert len(flat) == len(set(flat))

    def test_partition_ignores_traversal_order(self):
        forward = partition_paths(sorted(DOCS), 3)
        backward = partition_paths(sorted(DOCS, reverse=True), 3)
        assert forward == backward

    def test_sizebalanced_splits_by_load(self):
        sizes = {"big.txt": 100, "s1.txt": 1, "s2.txt": 1, "s3.txt": 1}
        parts = partition_paths(sizes, 2, "sizebalanced", sizes=sizes)
        big = next(part for part in parts if "big.txt" in part)
        assert big == ["big.txt"]  # LPT keeps the giant alone

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_paths(DOCS, 0)
        with pytest.raises(ValueError):
            partition_paths(DOCS, 2, "hashring")

    def test_shard_snapshots_slice_universe_and_statistics(self):
        index, frequencies = build_corpus()
        snapshots = shard_snapshots(index, DOCS, 3,
                                    frequencies=frequencies)
        assert len(snapshots) == 3
        union = set()
        for snapshot in snapshots:
            assert not (union & snapshot.universe)
            union |= snapshot.universe
            # shard-local N: the sliced sidecar only knows its docs
            local_n = snapshot.engine.ranker.frequencies.document_count
            assert local_n == len(snapshot.universe)
        assert union == set(DOCS)


class TestDifferentialBoolean:
    """The gate: sharded boolean == unsharded, byte for byte."""

    @pytest.mark.parametrize("shards", (1, 2, 3, 5))
    @pytest.mark.parametrize("strategy", ("roundrobin", "sizebalanced"))
    def test_in_memory_backend(self, shards, strategy):
        index, frequencies = build_corpus()
        engine = reference_engine()
        broker = build_sharded_service(
            index, DOCS, shards=shards, strategy=strategy,
            frequencies=frequencies,
        )
        with broker:
            for text in QUERIES:
                result = broker.query(text)
                assert result.paths == engine.search(text), text
                assert result.shards_ok == result.shards_total == shards

    def test_ridx2_backend(self, tmp_path):
        index, frequencies = build_corpus()
        engine = reference_engine()
        broker = build_sharded_service(
            index, DOCS, shards=3, frequencies=frequencies,
            ridx2_dir=str(tmp_path),
        )
        with broker:
            for text in QUERIES:
                assert broker.query(text).paths == engine.search(text), text

    def test_process_backend(self, tmp_path):
        index, frequencies = build_corpus()
        engine = reference_engine()
        broker = build_sharded_service(
            index, DOCS, shards=2, frequencies=frequencies,
            ridx2_dir=str(tmp_path), backend="process",
        )
        with broker:
            for text in ("alpha AND beta", "NOT delta", "alph*"):
                assert broker.query(text).paths == engine.search(text), text


class TestBM25Merge:
    def test_merge_is_a_prefix_of_the_concatenated_shard_lists(self):
        index, frequencies = build_corpus()
        broker = build_sharded_service(
            index, DOCS, shards=3, frequencies=frequencies,
        )
        with broker:
            topk = 5
            merged = broker.query("alpha OR gamma", rank="bm25",
                                  topk=topk)
            per_shard = []
            for group in broker.groups:
                per_shard.extend(
                    group.query("alpha OR gamma", rank="bm25",
                                topk=topk).hits
                )
            per_shard.sort(key=lambda hit: (-hit.score, hit.path))
            assert merged.hits == per_shard[:topk]

    def test_ondisk_shards_score_identically_to_in_memory(self, tmp_path):
        # Same shard-local statistics -> same scores, whichever engine
        # (in-memory ranker vs DAAT off mmap) computes them.
        index, frequencies = build_corpus()
        memory = build_sharded_service(
            index, DOCS, shards=3, frequencies=frequencies,
        )
        ondisk = build_sharded_service(
            index, DOCS, shards=3, frequencies=frequencies,
            ridx2_dir=str(tmp_path),
        )
        with memory, ondisk:
            a = memory.query("alpha AND beta", rank="bm25", topk=8).hits
            b = ondisk.query("alpha AND beta", rank="bm25", topk=8).hits
            assert a == b

    def test_bm25_without_frequencies_is_rejected(self):
        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=2)
        with broker:
            with pytest.raises(ValueError):
                broker.query("alpha", rank="bm25")


class TestDeadShards:
    def test_degrade_answers_from_live_shards(self):
        index, _ = build_corpus()
        engine = reference_engine()
        broker = build_sharded_service(index, DOCS, shards=3,
                                       partial="degrade")
        with broker:
            broker.kill_shard(1)
            dead_docs = broker.groups[1].replicas[0].service.snapshot.universe
            result = broker.query("alpha")
            expected = [path for path in engine.search("alpha")
                        if path not in dead_docs]
            assert result.paths == expected
            assert (result.shards_ok, result.shards_total) == (2, 3)
            assert result.degraded
            stats = broker.stats()
            assert stats["broker.shards_ok"] == 2.0
            assert stats["broker.degraded"] == 1.0

    def test_fail_raises_typed_error(self):
        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=3,
                                       partial="fail")
        with broker:
            broker.kill_shard(0)
            with pytest.raises(ShardDeadError):
                broker.query("alpha")
            assert broker.stats()["broker.failed"] == 1.0

    def test_all_shards_dead_raises_even_under_degrade(self):
        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=2,
                                       partial="degrade")
        with broker:
            broker.kill_shard(0)
            broker.kill_shard(1)
            with pytest.raises(ShardDeadError):
                broker.query("alpha")

    def test_replica_failover_hides_a_single_replica_death(self):
        index, _ = build_corpus()
        snapshots = shard_snapshots(index, DOCS, 2)
        broker = local_broker(snapshots, replicas=2, partial="fail")
        with broker:
            broker.groups[0].replicas[0].kill()
            result = broker.query("alpha")  # failover, not failure
            assert (result.shards_ok, result.shards_total) == (2, 2)
            assert not result.degraded
            assert broker.groups[0].alive

    def test_process_shard_kill_is_detected_not_waited_out(self, tmp_path):
        index, frequencies = build_corpus()
        engine = reference_engine()
        broker = build_sharded_service(
            index, DOCS, shards=3, frequencies=frequencies,
            ridx2_dir=str(tmp_path), backend="process",
        )
        with broker:
            victim = broker.groups[1].replicas[0]
            victim.kill()  # SIGKILL; next query runs real detection
            result = broker.query("alpha")
            assert (result.shards_ok, result.shards_total) == (2, 3)
            live = {path for group in broker.groups
                    if group.alive
                    for path in group.query("NOT nosuchterm").paths}
            assert set(result.paths) == set(engine.search("alpha")) & live


class TestBrokerFace:
    def test_parse_errors_are_fatal_not_partial(self):
        from repro.query.parser import ParseError

        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=2)
        with broker:
            with pytest.raises(ParseError):
                broker.query("AND AND")
            # a malformed query is the caller's fault, not a dead shard
            assert broker.stats()["broker.failed"] == 0.0

    def test_max_inflight_is_the_weakest_shards_budget(self):
        index, _ = build_corpus()
        snapshots = shard_snapshots(index, DOCS, 2)
        broker = local_broker(snapshots, replicas=2, max_inflight=8)
        with broker:
            assert broker.max_inflight == 16  # 2 replicas x 8 each

    def test_cache_scope_pins_the_topology(self):
        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=3)
        with broker:
            assert broker.cache_scope == "shards=3"

    def test_query_after_close_raises_typed(self):
        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=2)
        broker.close()
        assert broker.closed
        with pytest.raises(ServiceClosedError):
            broker.query("alpha")
        broker.close()  # idempotent

    def test_constructor_validation(self):
        index, _ = build_corpus()
        snapshots = shard_snapshots(index, DOCS, 2)
        with pytest.raises(ValueError):
            ScatterGatherBroker([], partial="degrade")
        with pytest.raises(ValueError):
            local_broker(snapshots, partial="maybe")
        with pytest.raises(ValueError):
            local_broker(snapshots, replicas=0)
        with pytest.raises(ValueError):
            build_sharded_service(index, DOCS, backend="remote")
        with pytest.raises(ValueError):
            build_sharded_service(index, DOCS, backend="process")

    def test_rank_validation(self):
        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=2)
        with broker:
            with pytest.raises(ValueError):
                broker.query("alpha", rank="pagerank")


class TestFrontendSeating:
    def test_frontend_over_broker_coalesces_and_scopes_keys(self):
        index, _ = build_corpus()
        engine = reference_engine()
        broker = build_sharded_service(index, DOCS, shards=3)
        frontend = AsyncSearchFrontend(broker, own_service=True,
                                       workers=2, batch_window=0.0)
        try:
            result = frontend.query("alpha AND beta")
            assert result.paths == engine.search("alpha AND beta")
            assert (result.shards_ok, result.shards_total) == (3, 3)
        finally:
            frontend.close()
        assert broker.closed  # own_service: one close shuts both

    def test_frontend_key_carries_the_shard_scope(self):
        from repro.query.cache import cache_key

        index, _ = build_corpus()
        broker = build_sharded_service(index, DOCS, shards=3)
        with broker:
            scoped = cache_key("alpha", False, "bool",
                               scope=broker.cache_scope)
            assert scoped == ("alpha", False, "bool", None, "shards=3")
            assert scoped != cache_key("alpha", False, "bool")
            assert scoped != cache_key("alpha", False, "bool",
                                       scope="shards=2")


# -- deterministic schedule sweep ----------------------------------------


def probe_expectations():
    """Global and per-shard answers for the sweep's probe query."""
    engine = reference_engine()
    full = engine.search("alpha")
    parts = partition_paths(DOCS, 2)
    per_shard = [sorted(set(full) & set(part)) for part in parts]
    return full, per_shard


def kill_scenario(provider):
    """Readers query while a killer takes shard 0 down, mid-stream.

    Oracle: every outcome is either the full answer (both shards
    alive when it scattered), the live shard's slice flagged degraded,
    or a typed error — and the run terminates (a hang would deadlock
    the cooperative scheduler).
    """
    full, per_shard = probe_expectations()
    index, _ = build_corpus()
    snapshots = shard_snapshots(index, DOCS, 2)
    broker = local_broker(snapshots, partial="degrade", sync=provider)
    results, errors = [], []

    def reader() -> None:
        for _ in range(3):
            try:
                results.append(broker.query("alpha"))
            except (ShardDeadError, ServiceOverloadedError,
                    ServiceClosedError) as exc:
                errors.append(exc)

    def killer() -> None:
        broker.kill_shard(0)

    threads = [
        provider.thread(reader, name="reader"),
        provider.thread(killer, name="killer"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    broker.close()

    assert len(results) + len(errors) == 3
    for result in results:
        if result.shards_ok == 2:
            assert result.paths == full
            assert not result.degraded
        else:
            assert result.paths == per_shard[1]
            assert result.degraded


def close_scenario(provider):
    """Readers query while the broker shuts down.

    A query racing the close may see some shards already closed —
    those count as dead, so under ``partial="degrade"`` a degraded
    slice is a legal outcome alongside the full answer and the typed
    errors.  What is *not* legal is a hang or an untyped result.
    """
    full, per_shard = probe_expectations()
    index, _ = build_corpus()
    snapshots = shard_snapshots(index, DOCS, 2)
    broker = local_broker(snapshots, partial="degrade", sync=provider)
    results, errors = [], []

    def reader() -> None:
        for _ in range(3):
            try:
                results.append(broker.query("alpha"))
            except (ShardDeadError, ServiceOverloadedError,
                    ServiceClosedError) as exc:
                errors.append(exc)

    def closer() -> None:
        broker.close()

    threads = [
        provider.thread(reader, name="reader"),
        provider.thread(closer, name="closer"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(results) + len(errors) == 3
    for result in results:
        if result.shards_ok == 2:
            assert result.paths == full
        else:
            assert result.degraded
            assert result.paths in per_shard


class TestScheduleSweep:
    @pytest.mark.parametrize("scenario", (kill_scenario, close_scenario),
                             ids=("kill", "close"))
    @pytest.mark.parametrize("strategy", ("random", "pct"))
    @pytest.mark.parametrize("seed", range(3))
    def test_kill_and_close_never_hang_or_race(self, scenario, strategy,
                                               seed):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy(strategy, seed))
        provider = InstrumentedSyncProvider(tracer=tracer,
                                            scheduler=scheduler)
        provider.run(lambda: scenario(provider))
        assert find_races(tracer) == []
