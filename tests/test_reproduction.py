"""The headline reproduction assertions: the simulated engine must
reproduce the *shape* of the paper's Tables 1-4.

Shape means: exact implementation orderings per platform, speed-ups
within tolerance, and the qualitative findings (all implementations tie
on 4 cores; Implementation 1 degrades with core count; Implementation 3
wins big on 32 cores; optimal extractor counts stay far below the core
count).

These run the full 51,000-file workload with a slightly coarsened
simulation (fewer batches, bounded sweep) to keep the suite fast; the
benchmarks regenerate the tables at full fidelity.
"""

import pytest

from repro.engine.config import Implementation
from repro.experiments import (
    PAPER_BEST,
    PAPER_SEQUENTIAL,
    PAPER_STAGE_TIMES,
    run_best_config_table,
    run_table1,
)
from repro.platforms import ALL_PLATFORMS, MANYCORE_32, OCTO_CORE, QUAD_CORE
from repro.simengine import Workload

IMPL1 = Implementation.SHARED_LOCKED
IMPL2 = Implementation.REPLICATED_JOINED
IMPL3 = Implementation.REPLICATED_UNJOINED

#: Reduced-fidelity sweeps still land within this of the paper's speed-ups.
SPEEDUP_TOLERANCE = 0.20


@pytest.fixture(scope="module")
def workload():
    return Workload.synthesize()


@pytest.fixture(scope="module")
def tables(workload):
    return {
        platform.name: run_best_config_table(
            platform,
            workload,
            max_extractors=10,
            max_updaters=5,
            max_joiners=2,
            batches_per_extractor=60,
        )
        for platform in ALL_PLATFORMS
    }


class TestTable1:
    def test_stage_times_match_paper(self, workload):
        for row in run_table1(workload):
            paper = PAPER_STAGE_TIMES[row.platform]
            assert row.filename_generation == pytest.approx(paper[0], rel=0.05)
            assert row.read_files == pytest.approx(paper[1], rel=0.05)
            assert row.read_and_extract == pytest.approx(paper[2], rel=0.05)
            assert row.index_update == pytest.approx(paper[3], rel=0.05)


class TestSequentialBaselines:
    def test_sequential_totals_match_paper(self, tables):
        for name, paper_seq in PAPER_SEQUENTIAL.items():
            assert tables[name].sequential_s == pytest.approx(
                paper_seq, rel=0.05
            )


class TestSpeedupsWithinTolerance:
    @pytest.mark.parametrize("platform", [p.name for p in ALL_PLATFORMS])
    @pytest.mark.parametrize("implementation", list(Implementation))
    def test_speedup(self, tables, platform, implementation):
        measured = tables[platform].row_for(implementation).speedup
        paper = PAPER_BEST[platform][implementation].speedup
        assert measured == pytest.approx(paper, rel=SPEEDUP_TOLERANCE), (
            f"{implementation.paper_name} on {platform}: "
            f"measured x{measured:.2f} vs paper x{paper:.2f}"
        )


class TestOrderings:
    """Who wins and who loses, per platform — the paper's key result."""

    def test_quad_core_all_tie(self, tables):
        speedups = [row.speedup for row in tables["quad-core"].rows]
        assert max(speedups) - min(speedups) < 0.25  # paper: 4.70..4.74

    def test_octo_core_impl3_beats_impl1(self, tables):
        table = tables["octo-core"]
        assert table.row_for(IMPL3).speedup > table.row_for(IMPL1).speedup

    def test_octo_core_impl3_beats_impl2(self, tables):
        table = tables["octo-core"]
        assert table.row_for(IMPL3).speedup > table.row_for(IMPL2).speedup

    def test_manycore_strict_ordering(self, tables):
        table = tables["manycore-32"]
        s1 = table.row_for(IMPL1).speedup
        s2 = table.row_for(IMPL2).speedup
        s3 = table.row_for(IMPL3).speedup
        assert s3 > s2 > s1

    def test_manycore_impl3_wins_big(self, tables):
        """Paper: 3.50 vs 1.96 — Implementation 3 is ~1.8x Implementation 1."""
        table = tables["manycore-32"]
        ratio = table.row_for(IMPL3).speedup / table.row_for(IMPL1).speedup
        assert ratio > 1.5

    def test_impl1_degrades_with_cores(self, tables):
        """Paper: Impl1 speed-up 4.71 -> 1.76 / 1.96 as cores grow."""
        quad = tables["quad-core"].row_for(IMPL1).speedup
        octo = tables["octo-core"].row_for(IMPL1).speedup
        many = tables["manycore-32"].row_for(IMPL1).speedup
        assert quad > octo and quad > many

    def test_variance_signs_match_paper(self, tables):
        for name, entries in PAPER_BEST.items():
            table = tables[name]
            for implementation, entry in entries.items():
                measured = table.row_for(implementation).variance_vs_impl1_pct
                if abs(entry.variance_vs_impl1_pct) > 2.0:
                    assert measured * entry.variance_vs_impl1_pct > 0, (
                        f"variance sign flipped for {implementation} on {name}"
                    )


class TestConfigurationShape:
    """Qualitative facts about the optima the paper emphasizes."""

    def test_extractors_far_below_core_count_on_manycore(self, tables):
        for row in tables["manycore-32"].rows:
            assert row.config.extractors <= 10  # paper maxima: 8-9 of 32

    def test_best_extractor_counts_near_paper(self, tables):
        for name, entries in PAPER_BEST.items():
            for implementation, entry in entries.items():
                measured = tables[name].row_for(implementation).config
                assert abs(
                    measured.extractors - entry.config.extractors
                ) <= 4, (
                    f"{implementation.paper_name} on {name}: "
                    f"best x={measured.extractors} vs paper "
                    f"x={entry.config.extractors}"
                )

    def test_impl3_extractor_count_grows_with_cores(self, tables):
        quad_x = tables["quad-core"].row_for(IMPL3).config.extractors
        many_x = tables["manycore-32"].row_for(IMPL3).config.extractors
        assert many_x >= quad_x
