"""Differential correctness of the mmap DAAT path.

The anchor for the on-disk read path: for every build backend and a
battery of boolean/wildcard queries, the DAAT engine over an mmap'd
RIDX2 file must return *byte-for-byte* the same sorted path list as the
in-memory :class:`QueryEngine`, and its BM25 scorer must agree with the
in-memory :class:`BM25Ranker` to the last float.  Also covered: the
phrase-query refusal, the ranking-mode-aware cache keys (a BM25 result
must never satisfy a boolean lookup), and serving a
:class:`SearchService` from an on-disk snapshot.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.index import MmapPostingsReader, join_indices, save_index
from repro.index.multi import MultiIndex
from repro.query import (
    BM25Ranker,
    CachingQueryEngine,
    FrequencyIndex,
    QueryEngine,
    cache_key,
    search_bm25,
)
from repro.query.cache import QueryCache
from repro.query.daat import DaatQueryEngine
from repro.service import SearchService
from repro.service.snapshot import IndexSnapshot

QUERIES = [
    "the",
    "the AND a",
    "the OR zzz-absent",
    "the AND NOT a",
    "NOT the",
    "(the OR a) AND NOT zzz-absent",
    "th*",
    "th* AND NOT a",
    "zzz-absent",
    "NOT zzz-absent",
    "the a",  # implicit AND
]

ENGINE_RUNS = [
    ("sequential", None, None),
    ("impl1", Implementation.SHARED_LOCKED, ThreadConfig(2, 1, 0)),
    ("impl2", Implementation.REPLICATED_JOINED, ThreadConfig(2, 0, 1)),
    ("impl3", Implementation.REPLICATED_UNJOINED, ThreadConfig(2, 2, 0)),
    (
        "impl2-process",
        Implementation.REPLICATED_JOINED,
        ThreadConfig(2, 0, 1, backend="process"),
    ),
]


def flatten(index):
    if isinstance(index, MultiIndex):
        return join_indices(index.replicas)
    return index


@pytest.fixture(scope="module", params=ENGINE_RUNS, ids=lambda r: r[0])
def engine_pair(request, tiny_fs, tmp_path_factory):
    """(in-memory QueryEngine, DAAT engine over the same index on disk)."""
    name, implementation, config = request.param
    if implementation is None:
        report = SequentialIndexer(tiny_fs).build()
    else:
        # oversubscribe keeps the process run valid on 1-CPU CI boxes;
        # the point here is the RWIRE1-built index, not parallelism.
        report = IndexGenerator(tiny_fs, oversubscribe=True).build(
            implementation, config
        )
    index = flatten(report.index)
    frequencies = FrequencyIndex.from_fs(tiny_fs)
    path = str(tmp_path_factory.mktemp("daat") / f"{name}.ridx2")
    save_index(index, path, format="ridx2", frequencies=frequencies)
    reader = MmapPostingsReader(path)
    universe = frozenset(frequencies._document_lengths.keys())
    memory = QueryEngine(index, universe=universe)
    yield memory, DaatQueryEngine(reader), frequencies
    reader.close()


class TestDifferentialBoolean:
    @pytest.mark.parametrize("query", QUERIES)
    def test_daat_equals_in_memory(self, engine_pair, query):
        memory, daat, _ = engine_pair
        assert daat.search(query) == memory.search(query)

    def test_every_single_term_agrees(self, engine_pair):
        memory, daat, _ = engine_pair
        terms = sorted(daat.reader.terms())
        for term in terms[:: max(1, len(terms) // 50)]:
            assert daat.search(term) == memory.search(term)

    def test_parallel_flag_is_accepted(self, engine_pair):
        memory, daat, _ = engine_pair
        assert daat.search("the", parallel=True) == memory.search("the")


class TestDifferentialBm25:
    @pytest.mark.parametrize(
        "query", ["the", "the OR a", "the AND a", "th*", "zzz-absent"]
    )
    def test_scores_are_float_identical(self, engine_pair, query):
        memory, daat, frequencies = engine_pair
        ranker = BM25Ranker(frequencies)
        expected = search_bm25(memory, ranker, query, topk=10)
        got = daat.search_bm25(query, topk=10)
        assert [(h.path, h.score) for h in got] == [
            (h.path, h.score) for h in expected
        ]

    def test_topk_truncates(self, engine_pair):
        _, daat, _ = engine_pair
        assert len(daat.search_bm25("the", topk=3)) <= 3

    def test_topk_must_be_positive(self, engine_pair):
        _, daat, _ = engine_pair
        with pytest.raises(ValueError, match="topk"):
            daat.search_bm25("the", topk=0)


class TestPhraseRefusal:
    def test_phrase_raises_with_guidance(self, engine_pair):
        _, daat, _ = engine_pair
        with pytest.raises(ValueError, match="positional"):
            daat.search('"the a"')


class TestRankingAwareCacheKeys:
    def test_bool_and_bm25_keys_differ(self):
        assert cache_key("the", False) != cache_key("the", False, "bm25", 10)

    def test_bm25_keys_differ_per_topk(self):
        assert cache_key("the", False, "bm25", 5) != cache_key(
            "the", False, "bm25", 10
        )

    def test_bm25_result_never_serves_boolean_query(self):
        # The regression this key shape exists to prevent: one cache,
        # same query text, ranked then boolean — the boolean lookup
        # must miss instead of returning RankedHits.
        cache = QueryCache(capacity=8)
        cache.put(cache_key("the", False, "bm25", 10), ["scored-garbage"])
        assert cache.get(cache_key("the", False)) is None

    def test_caching_engine_keeps_modes_apart(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        frequencies = FrequencyIndex.from_fs(tiny_fs)
        caching = CachingQueryEngine(
            QueryEngine(report.index), ranker=BM25Ranker(frequencies)
        )
        ranked = caching.search_bm25("the", topk=5)
        boolean = caching.search("the")
        assert [h.path for h in ranked] != boolean or boolean == []
        assert all(hasattr(h, "score") for h in ranked)
        assert all(isinstance(p, str) for p in boolean)
        # Both are cached, under distinct keys.
        assert caching.cache.hits == 0
        assert caching.search("the") == boolean
        assert caching.search_bm25("the", topk=5) == ranked
        assert caching.cache.hits == 2
        # A different K is a different entry.
        caching.search_bm25("the", topk=2)
        assert caching.cache.misses == 3

    def test_caching_engine_without_ranker_rejects_bm25(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        caching = CachingQueryEngine(QueryEngine(report.index))
        with pytest.raises(ValueError, match="ranker"):
            caching.search_bm25("the")

    def test_caching_engine_uses_native_scoring(self, tiny_fs, tmp_path):
        report = SequentialIndexer(tiny_fs).build()
        frequencies = FrequencyIndex.from_fs(tiny_fs)
        path = str(tmp_path / "native.ridx2")
        save_index(
            report.index, path, format="ridx2", frequencies=frequencies
        )
        with MmapPostingsReader(path) as reader:
            caching = CachingQueryEngine(DaatQueryEngine(reader))
            first = caching.search_bm25("the", topk=5)
            assert caching.search_bm25("the", topk=5) == first
            assert caching.cache.hits == 1


class TestOndiskService:
    @pytest.fixture
    def ridx2_file(self, tiny_fs, tmp_path):
        report = SequentialIndexer(tiny_fs).build()
        frequencies = FrequencyIndex.from_fs(tiny_fs)
        path = str(tmp_path / "serve.ridx2")
        save_index(
            report.index, path, format="ridx2", frequencies=frequencies
        )
        return path

    def test_snapshot_from_ondisk(self, ridx2_file, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        memory = QueryEngine(
            report.index,
            universe=frozenset(
                ref.path for ref in tiny_fs.list_files()
            ),
        )
        with MmapPostingsReader(ridx2_file) as reader:
            snapshot = IndexSnapshot.from_ondisk(reader)
            assert snapshot.provenance == "ondisk"
            assert snapshot.universe == frozenset(reader.doc_paths())
            for query in ("the", "NOT the", "th* AND a"):
                assert snapshot.search(query) == memory.search(query)

    def test_service_serves_boolean_and_bm25(self, ridx2_file):
        with MmapPostingsReader(ridx2_file) as reader:
            snapshot = IndexSnapshot.from_ondisk(reader)
            with SearchService(snapshot, workers=2) as service:
                result = service.query("the AND a")
                assert result.generation == 0
                assert result.paths == snapshot.search("the AND a")
                ranked = service.query("the", rank="bm25", topk=5)
                assert ranked.hits is not None
                assert len(ranked.hits) <= 5
                assert ranked.paths == [h.path for h in ranked.hits]
                scores = [h.score for h in ranked.hits]
                assert scores == sorted(scores, reverse=True)

    def test_service_rejects_unknown_rank(self, ridx2_file):
        with MmapPostingsReader(ridx2_file) as reader:
            snapshot = IndexSnapshot.from_ondisk(reader)
            with SearchService(snapshot, workers=1) as service:
                with pytest.raises(ValueError, match="rank"):
                    service.query("the", rank="pagerank")

    def test_in_memory_snapshot_cannot_rank(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        snapshot = IndexSnapshot(index=report.index)
        with pytest.raises(ValueError, match="rank"):
            snapshot.search_bm25("the")
