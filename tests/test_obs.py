"""Unit tests for the observability layer: spans, metrics, recorder,
Chrome-trace export, and the trace validator.

The global recorder is process state; every test that touches it swaps
in a fresh one via the ``fresh_obs`` fixture so nothing leaks between
tests (or into the engine tests, which also record through it).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_SPAN,
    MetricsRegistry,
    Recorder,
    SpanRecord,
    children_of,
    chrome_trace,
    human_summary,
    rebase_spans,
    total_duration,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs import recorder as obsrec


@pytest.fixture
def fresh_obs():
    """A fresh, disabled global recorder; the previous one is restored."""
    previous = obsrec.set_recorder(Recorder(enabled=False))
    try:
        yield obsrec.get_recorder()
    finally:
        obsrec.set_recorder(previous)


def make_span(name, start=0.0, duration=1.0, span_id=1, parent_id=None,
              pid=1000, tid=1, **attrs):
    return SpanRecord(name=name, start=start, duration=duration, pid=pid,
                      tid=tid, thread="t", span_id=span_id,
                      parent_id=parent_id, attrs=attrs)


# -- span records ------------------------------------------------------


class TestSpanRecord:
    def test_end_is_start_plus_duration(self):
        span = make_span("a", start=2.0, duration=0.5)
        assert span.end == 2.5

    def test_rebase_shifts_starts_only(self):
        spans = [make_span("a", start=1.0), make_span("b", start=2.0)]
        rebased = rebase_spans(spans, 10.0)
        assert [s.start for s in rebased] == [11.0, 12.0]
        assert [s.duration for s in rebased] == [1.0, 1.0]
        assert [s.name for s in rebased] == ["a", "b"]

    def test_rebase_roundtrip(self):
        spans = [make_span("a", start=5.25)]
        assert rebase_spans(rebase_spans(spans, -5.0), 5.0)[0].start == 5.25

    def test_children_of(self):
        root = make_span("root", span_id=1)
        child = make_span("child", span_id=2, parent_id=1)
        other = make_span("other", span_id=3, parent_id=99)
        assert children_of([root, child, other], root) == [child]

    def test_total_duration(self):
        spans = [make_span("phase.extract", duration=1.0),
                 make_span("phase.extract", duration=0.5),
                 make_span("phase.join", duration=2.0)]
        assert total_duration(spans, "phase.extract") == 1.5
        assert total_duration(spans, "phase.missing") == 0.0


# -- metrics -----------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.snapshot()["c"] == 5.0

    def test_gauge_tracks_last_and_max(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(7)
        registry.gauge("g").set(3)
        snapshot = registry.snapshot()
        assert snapshot["g"] == 3
        assert snapshot["g.max"] == 7

    def test_histogram_summary_keys(self):
        registry = MetricsRegistry()
        for value in (1, 2, 3, 100):
            registry.histogram("h").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["h.count"] == 4.0
        assert snapshot["h.mean"] == pytest.approx(26.5)
        # Percentiles report bucket upper bounds: coarse but bounded.
        assert snapshot["h.p50"] >= 2.0
        assert snapshot["h.p99"] >= 100.0

    def test_buckets_cover_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert DEFAULT_BUCKETS[-1] >= 2 ** 19
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")


# -- recorder ----------------------------------------------------------


class TestRecorder:
    def test_nesting_builds_parent_links(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_siblings_share_parent(self):
        recorder = Recorder()
        with recorder.span("root"):
            with recorder.span("a"):
                pass
            with recorder.span("b"):
                pass
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id

    def test_attrs_recorded_and_settable(self):
        recorder = Recorder()
        with recorder.span("s", fixed=1) as span:
            span.set_attr("late", "v")
        (record,) = recorder.spans
        assert record.attrs == {"fixed": 1, "late": "v"}

    def test_duration_positive_and_matches_record(self):
        recorder = Recorder()
        with recorder.span("s") as span:
            time.sleep(0.001)
        (record,) = recorder.spans
        assert record.duration == span.duration > 0

    def test_disabled_recorder_hands_out_null_span(self):
        recorder = Recorder(enabled=False)
        assert recorder.span("anything", k=1) is NULL_SPAN
        assert recorder.spans == []

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_attr("k", 1)
        assert span.duration == 0.0
        assert span.name == ""

    def test_absorb_appends_foreign_spans(self):
        recorder = Recorder()
        foreign = make_span("foreign")
        recorder.absorb([foreign])
        assert recorder.spans == [foreign]

    def test_clear_resets_spans_and_metrics(self):
        recorder = Recorder()
        with recorder.span("s"):
            pass
        recorder.metrics.counter("c").inc()
        recorder.clear()
        assert recorder.spans == []
        assert recorder.metrics.snapshot() == {}


class TestGlobalRecorder:
    def test_disabled_by_default_and_toggles(self, fresh_obs):
        assert not obsrec.enabled()
        assert obsrec.span("x") is NULL_SPAN
        obsrec.enable()
        assert obsrec.enabled()
        with obsrec.span("x"):
            pass
        assert [s.name for s in obsrec.get_recorder().spans] == ["x"]
        obsrec.disable()
        assert obsrec.span("y") is NULL_SPAN

    def test_set_recorder_returns_previous(self, fresh_obs):
        replacement = Recorder(enabled=True)
        previous = obsrec.set_recorder(replacement)
        try:
            assert previous is fresh_obs
            assert obsrec.get_recorder() is replacement
        finally:
            obsrec.set_recorder(fresh_obs)

    def test_metrics_usable_while_disabled(self, fresh_obs):
        obsrec.metrics().counter("c").inc()
        assert obsrec.metrics().snapshot()["c"] == 1.0

    def test_disabled_span_overhead_is_one_branch(self, fresh_obs):
        """The whole point of the design: tracing off must cost nearly
        nothing.  Time 200k disabled span calls and insist on a
        generous absolute bound — microseconds per call would mean the
        disabled path started allocating or locking."""
        span = obsrec.span
        calls = 200_000
        start = time.perf_counter()
        for _ in range(calls):
            span("hot.path")
        elapsed = time.perf_counter() - start
        # ~60-120ns/call in CPython; 2.5us/call is a 20x+ regression
        # cushion that still fails if the fast path grows real work.
        assert elapsed / calls < 2.5e-6
        assert obsrec.get_recorder().spans == []


# -- chrome trace export ----------------------------------------------


def nested_spans():
    recorder = Recorder()
    with recorder.span("build", implementation="IMPL2"):
        with recorder.span("phase.stage1"):
            pass
        with recorder.span("phase.extract"):
            with recorder.span("extract.worker", worker=0):
                pass
    return recorder.spans


class TestChromeTrace:
    def test_document_shape(self):
        trace = chrome_trace(nested_spans())
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert all(e["ph"] in ("B", "E", "M") for e in events)

    def test_begin_end_pairs_balance(self):
        events = chrome_trace(nested_spans())["traceEvents"]
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 4

    def test_timestamps_microseconds_monotonic_per_track(self):
        events = chrome_trace(nested_spans())["traceEvents"]
        tracks = {}
        for event in events:
            if event["ph"] in ("B", "E"):
                tracks.setdefault((event["pid"], event["tid"]), []).append(
                    event["ts"]
                )
        for stamps in tracks.values():
            assert stamps == sorted(stamps)

    def test_attrs_become_args(self):
        events = chrome_trace(nested_spans())["traceEvents"]
        build = next(e for e in events
                     if e["ph"] == "B" and e["name"] == "build")
        assert build["args"]["implementation"] == "IMPL2"

    def test_validator_accepts_own_output(self):
        assert validate_chrome_trace(chrome_trace(nested_spans())) == []

    def test_validator_rejects_unbalanced_stack(self):
        trace = chrome_trace(nested_spans())
        trace["traceEvents"] = [e for e in trace["traceEvents"]
                                if e["ph"] != "E"]
        assert validate_chrome_trace(trace) != []

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "B"}]}) != []

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), nested_spans())
        with open(path) as handle:
            json.load(handle)  # must be a valid JSON document
        assert validate_trace_file(str(path)) == []

    def test_validate_cli_accepts_and_rejects(self, tmp_path):
        good = tmp_path / "good.json"
        write_chrome_trace(str(good), nested_spans())
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "B", "name": "x"}]}')
        ok = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", str(good)],
            capture_output=True, text=True,
        )
        assert ok.returncode == 0
        assert "valid chrome trace" in ok.stdout
        broken = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", str(bad)],
            capture_output=True, text=True,
        )
        assert broken.returncode == 1


class TestHumanSummary:
    def test_sections_present(self):
        text = human_summary(nested_spans(), {"build.files_per_s": 42.0,
                                              "query.cache.hit_rate": 0.5})
        assert "stages:" in text
        assert "extract" in text
        assert "workers:" in text
        assert "metrics:" in text
        assert "build.files_per_s" in text

    def test_empty_inputs_do_not_crash(self):
        assert isinstance(human_summary([], {}), str)
