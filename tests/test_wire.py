"""Tests for the RWIRE1 wire format and the wire-ready ReplicaBuilder."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    InvertedIndex,
    ReplicaBuilder,
    dump_index_wire,
    index_from_bytes,
    index_to_bytes,
    load_index_wire,
    merge_wire_replica,
)
from repro.index.binfmt import WIRE_MAGIC, dump_index_bytes
from repro.text import TermBlock, Tokenizer

terms_strategy = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits,
            min_size=1, max_size=10),
    max_size=12,
    unique=True,
)
blocks_strategy = st.dictionaries(
    st.text(alphabet=string.ascii_lowercase + "/._- \x00é", min_size=1,
            max_size=16),
    terms_strategy,
    max_size=10,
)


def _index_of(blocks):
    index = InvertedIndex()
    for path, terms in blocks.items():
        index.add_block(TermBlock(path=path, terms=tuple(terms)))
    return index


class TestWireRoundTrip:
    def test_empty_index(self):
        blob = dump_index_wire(InvertedIndex())
        assert blob.startswith(WIRE_MAGIC)
        loaded = load_index_wire(blob)
        assert len(loaded) == 0
        assert loaded.block_count == 0

    def test_small_index(self):
        index = _index_of({
            "a.txt": ["cat", "dog"],
            "b.txt": ["dog", "fox"],
        })
        loaded = load_index_wire(dump_index_wire(index))
        assert loaded == index
        assert loaded.block_count == index.block_count
        assert loaded.lookup("dog") == ["a.txt", "b.txt"]

    def test_preserves_postings_order(self):
        # RWIRE1 is order-preserving, unlike canonical RIDX1.
        index = _index_of({"z.txt": ["term"], "a.txt": ["term"]})
        loaded = load_index_wire(dump_index_wire(index))
        assert loaded.lookup("term") == ["z.txt", "a.txt"]

    def test_empty_file_block_counted(self):
        index = InvertedIndex()
        index.add_block(TermBlock(path="empty.txt", terms=()))
        loaded = load_index_wire(dump_index_wire(index))
        assert loaded.block_count == 1
        assert len(loaded) == 0

    def test_rejects_wrong_magic(self):
        with pytest.raises(ValueError):
            load_index_wire(b"RIDX1junk")

    def test_rejects_truncated_postings(self):
        blob = dump_index_wire(_index_of({"a.txt": ["cat", "dog"]}))
        with pytest.raises(ValueError):
            load_index_wire(blob[:-4])

    @given(blocks_strategy)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_any_index(self, blocks):
        index = _index_of(blocks)
        loaded = load_index_wire(dump_index_wire(index))
        assert loaded == index
        assert loaded.block_count == index.block_count


class TestMergeWireReplica:
    def test_merge_disjoint_replicas(self):
        left = _index_of({"a.txt": ["cat", "dog"]})
        right = _index_of({"b.txt": ["dog", "fox"]})
        merged = InvertedIndex()
        assert merge_wire_replica(merged, dump_index_wire(left)) == 1
        assert merge_wire_replica(merged, dump_index_wire(right)) == 1
        assert sorted(merged.lookup("dog")) == ["a.txt", "b.txt"]
        assert merged.block_count == 2
        assert merged.posting_count == 4

    def test_merge_equals_threaded_join(self):
        from repro.index import join_indices

        replicas = [
            _index_of({"a.txt": ["cat"], "b.txt": ["cat", "emu"]}),
            _index_of({"c.txt": ["cat", "dog"]}),
        ]
        joined = join_indices(replicas)
        merged = InvertedIndex()
        for replica in replicas:
            merge_wire_replica(merged, dump_index_wire(replica))
        assert merged == joined
        assert dump_index_bytes(merged) == dump_index_bytes(joined)


class TestReplicaBuilder:
    def test_add_scan_dedups_preserving_order(self):
        builder = ReplicaBuilder()
        distinct = builder.add_scan("a.txt", ["dog", "cat", "dog", "ant"])
        assert distinct == 3
        index = builder.to_index()
        assert list(index.terms()).count("dog") == 1
        assert index.lookup("dog") == ["a.txt"]

    def test_matches_inverted_index(self):
        tokenizer = Tokenizer()
        files = {
            "a.txt": b"the cat sat on the mat",
            "b/c.txt": b"cat and dog and cat",
            "empty.txt": b"",
        }
        builder = ReplicaBuilder()
        reference = InvertedIndex()
        for path, content in files.items():
            builder.add_scan(path, tokenizer.iter_terms(content))
            from repro.text import extract_term_block

            reference.add_block(extract_term_block(path, content, tokenizer))
        built = builder.to_index()
        assert built == reference
        assert built.block_count == reference.block_count
        assert dump_index_bytes(built) == dump_index_bytes(reference)

    def test_counters(self):
        builder = ReplicaBuilder()
        builder.add_scan("a.txt", ["cat", "dog"])
        builder.add_scan("b.txt", ["dog"])
        assert len(builder) == 2
        assert builder.doc_count == 2
        assert builder.block_count == 2
        assert builder.posting_count == 3

    def test_add_block(self):
        builder = ReplicaBuilder()
        builder.add_block(TermBlock(path="a.txt", terms=("cat", "dog")))
        assert builder.to_index().lookup("cat") == ["a.txt"]

    @given(blocks_strategy)
    @settings(max_examples=30, deadline=None)
    def test_builder_equivalent_to_index(self, blocks):
        builder = ReplicaBuilder()
        for path, terms in blocks.items():
            builder.add_scan(path, terms)
        assert builder.to_index() == _index_of(blocks)


class TestBytesDispatch:
    def test_to_bytes_formats(self):
        index = _index_of({"a.txt": ["cat"]})
        assert index_to_bytes(index).startswith(b"RIDX1")
        assert index_to_bytes(index, wire=True).startswith(WIRE_MAGIC)

    def test_from_bytes_sniffs_magic(self):
        index = _index_of({"a.txt": ["cat", "dog"], "b.txt": ["dog"]})
        assert index_from_bytes(index_to_bytes(index)) == index
        assert index_from_bytes(index_to_bytes(index, wire=True)) == index

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            index_from_bytes(b"not an index at all")
