"""Tests for the query extensions: wildcards and ranked retrieval."""

import pytest

from repro.index import InvertedIndex
from repro.query import (
    FrequencyIndex,
    ParseError,
    Prefix,
    PrefixDictionary,
    QueryEngine,
    Term,
    TfIdfRanker,
    expand_prefixes,
    has_prefixes,
    parse_query,
    search_ranked,
)
from repro.query.ast import And, Or
from repro.text import TermBlock


class TestPrefixParsing:
    def test_trailing_star_is_prefix(self):
        assert parse_query("inter*") == Prefix("inter")

    def test_prefix_lowercased(self):
        assert parse_query("Inter*") == Prefix("inter")

    def test_prefix_in_boolean_expression(self):
        query = parse_query("cat AND dog*")
        assert query == And((Term("cat"), Prefix("dog")))

    def test_has_prefixes(self):
        assert has_prefixes(parse_query("a AND (b OR c*)"))
        assert not has_prefixes(parse_query("a AND b"))

    def test_bare_star_is_not_a_token(self):
        with pytest.raises(ParseError):
            parse_query("*")


class TestPrefixDictionary:
    @pytest.fixture
    def dictionary(self):
        return PrefixDictionary(
            ["apple", "application", "apply", "banana", "band", "bandit"]
        )

    def test_expand(self, dictionary):
        assert dictionary.expand("appl") == ["apple", "application", "apply"]

    def test_expand_exact_word(self, dictionary):
        assert dictionary.expand("banana") == ["banana"]

    def test_expand_nothing(self, dictionary):
        assert dictionary.expand("zebra") == []

    def test_expand_limit(self, dictionary):
        assert len(dictionary.expand("b", limit=2)) == 2

    def test_empty_prefix_rejected(self, dictionary):
        with pytest.raises(ValueError):
            dictionary.expand("")

    def test_contains(self, dictionary):
        assert "band" in dictionary
        assert "ban" not in dictionary

    def test_deduplicates(self):
        assert len(PrefixDictionary(["a", "a", "b"])) == 2


class TestExpandPrefixes:
    def test_rewrites_to_or(self):
        dictionary = PrefixDictionary(["cat", "catalog", "dog"])
        expanded = expand_prefixes(parse_query("cat*"), dictionary)
        assert expanded == Or((Term("cat"), Term("catalog")))

    def test_single_match_becomes_term(self):
        dictionary = PrefixDictionary(["dog"])
        assert expand_prefixes(parse_query("do*"), dictionary) == Term("dog")

    def test_no_match_becomes_unmatchable(self):
        dictionary = PrefixDictionary(["dog"])
        expanded = expand_prefixes(parse_query("zebra*"), dictionary)
        assert isinstance(expanded, Term)

    def test_nested_expansion(self):
        dictionary = PrefixDictionary(["cat", "car", "dog"])
        expanded = expand_prefixes(parse_query("NOT ca* AND dog"), dictionary)
        assert not has_prefixes(expanded)


def make_engine():
    index = InvertedIndex()
    index.add_block(TermBlock("f1", ("interface", "internal", "cat")))
    index.add_block(TermBlock("f2", ("internet", "dog")))
    index.add_block(TermBlock("f3", ("cat", "dog")))
    return QueryEngine(index, universe=["f1", "f2", "f3"])


class TestWildcardSearch:
    def test_prefix_matches_all_expansions(self):
        assert make_engine().search("inter*") == ["f1", "f2"]

    def test_prefix_with_boolean(self):
        assert make_engine().search("inter* AND dog") == ["f2"]

    def test_prefix_no_matches(self):
        assert make_engine().search("zzz*") == []

    def test_prefix_under_not(self):
        assert make_engine().search("NOT inter*") == ["f3"]

    def test_dictionary_cached(self):
        engine = make_engine()
        engine.search("inter*")
        first = engine._prefix_dictionary
        engine.search("cat*")
        assert engine._prefix_dictionary is first

    def test_wildcard_over_multi_index(self):
        from repro.index import MultiIndex

        r1 = InvertedIndex()
        r1.add_block(TermBlock("f1", ("interface",)))
        r2 = InvertedIndex()
        r2.add_block(TermBlock("f2", ("internet",)))
        engine = QueryEngine(MultiIndex([r1, r2]))
        assert engine.search("inter*", parallel=True) == ["f1", "f2"]


class TestFrequencyIndex:
    @pytest.fixture
    def frequencies(self):
        index = FrequencyIndex()
        index.add_document("f1", ["cat", "cat", "cat", "dog"])
        index.add_document("f2", ["cat", "fish"])
        index.add_document("f3", ["dog", "dog"])
        return index

    def test_tf(self, frequencies):
        assert frequencies.tf("cat", "f1") == 3
        assert frequencies.tf("cat", "f2") == 1
        assert frequencies.tf("cat", "f3") == 0

    def test_df(self, frequencies):
        assert frequencies.df("cat") == 2
        assert frequencies.df("fish") == 1
        assert frequencies.df("ghost") == 0

    def test_document_count_and_length(self, frequencies):
        assert frequencies.document_count == 3
        assert frequencies.document_length("f1") == 4
        assert frequencies.document_length("ghost") == 0

    def test_duplicate_document_rejected(self, frequencies):
        with pytest.raises(ValueError):
            frequencies.add_document("f1", ["x"])

    def test_from_fs(self, tiny_fs, tokenizer):
        frequencies = FrequencyIndex.from_fs(tiny_fs, tokenizer)
        assert frequencies.document_count == len(list(tiny_fs.list_files()))
        ref = next(iter(tiny_fs.list_files()))
        terms = tokenizer.tokenize(tiny_fs.read_file(ref.path))
        assert frequencies.document_length(ref.path) == len(terms)
        assert frequencies.tf(terms[0], ref.path) == terms.count(terms[0])


class TestTfIdfRanker:
    @pytest.fixture
    def ranker(self):
        index = FrequencyIndex()
        index.add_document("heavy", ["cat"] * 10 + ["filler"] * 5)
        index.add_document("light", ["cat"] + ["filler"] * 10)
        index.add_document("none", ["filler"] * 5)
        return TfIdfRanker(index)

    def test_higher_tf_scores_higher(self, ranker):
        hits = ranker.rank(["heavy", "light"], ["cat"])
        assert hits[0].path == "heavy"
        assert hits[0].score > hits[1].score

    def test_absent_term_scores_zero(self, ranker):
        assert ranker.score("none", ["cat"]) == 0.0

    def test_rare_terms_weigh_more(self, ranker):
        # "cat" (df 2) is rarer than "filler" (df 3).
        assert ranker.idf("cat") > ranker.idf("filler")

    def test_ties_broken_by_path(self, ranker):
        hits = ranker.rank(["b", "a"], ["nonexistent"])
        assert [h.path for h in hits] == ["a", "b"]

    def test_search_ranked_end_to_end(self):
        index = InvertedIndex()
        index.add_block(TermBlock("heavy", ("cat", "filler")))
        index.add_block(TermBlock("light", ("cat", "filler")))
        engine = QueryEngine(index)
        frequencies = FrequencyIndex()
        frequencies.add_document("heavy", ["cat"] * 9 + ["filler"])
        frequencies.add_document("light", ["cat", "filler"])
        hits = search_ranked(engine, TfIdfRanker(frequencies), "cat")
        assert [h.path for h in hits] == ["heavy", "light"]

    def test_search_ranked_respects_boolean_filter(self):
        index = InvertedIndex()
        index.add_block(TermBlock("match", ("cat", "dog")))
        index.add_block(TermBlock("filtered", ("cat",)))
        engine = QueryEngine(index)
        frequencies = FrequencyIndex()
        frequencies.add_document("match", ["cat", "dog"])
        frequencies.add_document("filtered", ["cat"] * 100)
        hits = search_ranked(engine, TfIdfRanker(frequencies), "cat AND dog")
        assert [h.path for h in hits] == ["match"]
