"""Tests for the query optimizer, including equivalence properties."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import InvertedIndex
from repro.query import And, Not, Or, QueryEngine, Term, parse_query
from repro.query.optimizer import (
    EVERYTHING,
    NOTHING,
    describe_rewrites,
    node_count,
    optimize,
)
from repro.text import TermBlock


class TestRewrites:
    def test_flatten_nested_and(self):
        query = And((And((Term("a"), Term("b"))), Term("c")))
        assert optimize(query) == And((Term("a"), Term("b"), Term("c")))

    def test_flatten_nested_or(self):
        query = Or((Term("a"), Or((Term("b"), Term("c")))))
        assert optimize(query) == Or((Term("a"), Term("b"), Term("c")))

    def test_deduplicate(self):
        assert optimize(parse_query("a AND a")) == Term("a")
        assert optimize(parse_query("a OR a OR a")) == Term("a")

    def test_double_negation(self):
        assert optimize(parse_query("NOT NOT a")) == Term("a")
        assert optimize(parse_query("NOT NOT NOT a")) == Not(Term("a"))

    def test_complement_and(self):
        assert optimize(parse_query("a AND NOT a")) == NOTHING

    def test_complement_or(self):
        assert optimize(parse_query("a OR NOT a")) == EVERYTHING

    def test_absorption_and(self):
        assert optimize(parse_query("a AND (a OR b)")) == Term("a")

    def test_absorption_or(self):
        assert optimize(parse_query("a OR (a AND b)")) == Term("a")

    def test_singleton_unwrap(self):
        assert optimize(And((Term("a"),))) == Term("a")

    def test_mixed_not_flattened_across_operators(self):
        query = optimize(parse_query("a AND (b OR c)"))
        assert query == And((Term("a"), Or((Term("b"), Term("c")))))

    def test_idempotent(self):
        query = parse_query("a AND a AND NOT NOT (b OR b)")
        once = optimize(query)
        assert optimize(once) == once

    def test_node_count(self):
        # And + a + Or + b + Not + c
        assert node_count(parse_query("a AND (b OR NOT c)")) == 6

    def test_describe_rewrites(self):
        original = parse_query("a AND a AND a")
        before, after = describe_rewrites(original, optimize(original))
        assert before == 4 and after == 1


def _build_engine(docs):
    index = InvertedIndex()
    universe = []
    for path, doc_terms in docs:
        index.add_block(TermBlock(path, tuple(doc_terms)))
        universe.append(path)
    return QueryEngine(index, universe=universe)


class TestEngineIntegration:
    @pytest.fixture
    def engine(self):
        return _build_engine(
            [("f1", ["a", "b"]), ("f2", ["a"]), ("f3", ["b", "c"])]
        )

    def test_redundant_query_same_result(self, engine):
        assert engine.search("a AND a") == engine.search("a")

    def test_complement_matches_everything(self, engine):
        assert engine.search("a OR NOT a") == ["f1", "f2", "f3"]

    def test_complement_matches_nothing(self, engine):
        assert engine.search("c AND NOT c") == []

    def test_optimize_flag_off_still_correct(self, engine):
        query = "a AND (a OR b)"
        assert engine.search(query, optimize=False) == engine.search(query)


# -- equivalence property: optimize() never changes evaluation --------------

term_names = st.sampled_from(list("abcd"))


@st.composite
def query_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return Term(draw(term_names))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(query_trees(depth=depth + 1)))
    n = draw(st.integers(min_value=1, max_value=3))
    operands = tuple(draw(query_trees(depth=depth + 1)) for _ in range(n))
    return And(operands) if kind == "and" else Or(operands)


@st.composite
def document_sets(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    docs = []
    for i in range(n):
        doc_terms = draw(
            st.lists(term_names, max_size=4, unique=True)
        )
        docs.append((f"d{i}", doc_terms))
    return docs


class TestEquivalenceProperty:
    @given(query_trees(), document_sets())
    @settings(max_examples=150, deadline=None)
    def test_optimized_query_evaluates_identically(self, query, docs):
        engine = _build_engine(docs)
        postings = engine._fetch_postings(
            query.terms() | optimize(query).terms(), parallel=False
        )
        original = engine._evaluate(query, postings)
        rewritten = engine._evaluate(optimize(query), postings)
        assert original == rewritten

    @given(query_trees())
    @settings(max_examples=150)
    def test_never_grows(self, query):
        assert node_count(optimize(query)) <= node_count(query)

    @given(query_trees())
    @settings(max_examples=100)
    def test_idempotent(self, query):
        once = optimize(query)
        assert optimize(once) == once
