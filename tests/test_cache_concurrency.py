"""Concurrency and consistency tests for the query cache.

Three layers of evidence that :class:`~repro.query.cache.QueryCache`
is safe to hammer from every thread a desktop search runs on:

1. a stress test with real threads (lots of nondeterminism, weak
   oracle: invariants must hold afterwards);
2. a deterministic schedule sweep through the schedule checker — the
   cache takes its lock from a
   :class:`~repro.schedcheck.sync.InstrumentedSyncProvider`, so the
   race detector sees every entry access, and a mutation run with the
   lock broken proves the detector is actually watching;
3. copy-in/copy-out semantics: caller-side mutation of inserted or
   returned lists must never corrupt later hits.

Plus the invalidation integration: after an incremental refresh,
``CachingQueryEngine.invalidate()`` must guarantee no stale postings.
"""

from __future__ import annotations

import threading

import pytest

from repro.query.cache import CachingQueryEngine, QueryCache
from repro.query.evaluator import QueryEngine
from repro.schedcheck import (
    CooperativeScheduler,
    InstrumentedSyncProvider,
    Tracer,
    UnlockedSyncProvider,
    find_races,
    make_strategy,
)


# -- real-thread stress ------------------------------------------------


class TestThreadStress:
    THREADS = 8
    OPS = 300

    def test_hammered_cache_stays_consistent(self):
        cache = QueryCache(capacity=16)
        keys = [(f"q{i}", False) for i in range(40)]
        start = threading.Barrier(self.THREADS)
        errors = []

        def worker(worker_id: int) -> None:
            start.wait()
            try:
                for op in range(self.OPS):
                    key = keys[(worker_id * 7 + op) % len(keys)]
                    if op % 3 == 0:
                        cache.put(key, [f"{key[0]}.txt"])
                    elif op % 31 == 0:
                        cache.clear()
                    else:
                        value = cache.get(key)
                        # a hit must return exactly what a put inserted
                        if value is not None and value != [f"{key[0]}.txt"]:
                            errors.append((key, value))
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert len(cache) <= cache.capacity
        gets = sum(1 for w in range(self.THREADS) for op in range(self.OPS)
                   if op % 3 != 0 and op % 31 != 0)
        assert cache.hits + cache.misses == gets
        assert 0.0 <= cache.hit_rate <= 1.0
        # surviving entries are uncorrupted
        for (query, parallel), _ in [(k, None) for k in keys]:
            value = cache.get((query, parallel))
            if value is not None:
                assert value == [f"{query}.txt"]

    def test_caching_engine_answers_match_under_threads(self, tiny_fs):
        from repro.engine import SequentialIndexer

        report = SequentialIndexer(tiny_fs).build()
        engine = QueryEngine(report.index)
        queries = sorted(report.index.terms())[:4]
        expected = {q: QueryEngine(report.index).search(q) for q in queries}
        caching = CachingQueryEngine(engine, capacity=8)
        start = threading.Barrier(6)
        mismatches = []

        def worker(worker_id: int) -> None:
            start.wait()
            for op in range(40):
                query = queries[(worker_id + op) % len(queries)]
                result = caching.search(query)
                if result != expected[query]:
                    mismatches.append((query, result))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert mismatches == []
        assert caching.cache.hits > 0  # repeats actually hit


# -- deterministic schedule sweep --------------------------------------


def cache_scenario(provider):
    """Two threads interleaving get/put/clear on one shared cache."""
    cache = QueryCache(capacity=2, sync=provider)

    def reader() -> None:
        for _ in range(3):
            value = cache.get(("q", False))
            assert value is None or value == ["a.txt"]

    def writer() -> None:
        for i in range(3):
            cache.put(("q", False), ["a.txt"])
            cache.put((f"other{i}", False), ["b.txt"])
        cache.clear()

    threads = [provider.thread(reader, name="reader"),
               provider.thread(writer, name="writer")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return cache


class TestScheduleSweep:
    @pytest.mark.parametrize("strategy", ("random", "pct"))
    @pytest.mark.parametrize("seed", range(6))
    def test_no_races_across_schedules(self, strategy, seed):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy(strategy, seed))
        provider = InstrumentedSyncProvider(tracer=tracer,
                                            scheduler=scheduler)
        provider.run(lambda: cache_scenario(provider))
        assert find_races(tracer) == []

    def test_record_mode_sees_entry_accesses(self):
        # Sanity: the cache's access() declarations reach the tracer, so
        # the sweep above is actually checking something.
        tracer = Tracer()
        provider = InstrumentedSyncProvider(tracer=tracer)
        provider.run(lambda: cache_scenario(provider))
        locations = {access.location for access in tracer.accesses}
        assert "query.cache.entries" in locations

    def test_broken_lock_is_caught(self):
        # Mutation self-test: strip the cache's lock and the detector
        # must report races on the entries location — proof the locked
        # runs pass because of the lock, not detector blindness.
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy("random", 1))
        provider = UnlockedSyncProvider(
            tracer=tracer,
            scheduler=scheduler,
            break_locks=("query.cache.lock",),
        )
        provider.run(lambda: cache_scenario(provider))
        races = find_races(tracer)
        assert races != []
        assert any("query.cache.entries" in race.location for race in races)


# -- copy-in / copy-out ------------------------------------------------


class TestCopySemantics:
    def test_mutating_inserted_list_does_not_corrupt_cache(self):
        cache = QueryCache(capacity=4)
        inserted = ["a.txt", "b.txt"]
        cache.put(("q", False), inserted)
        inserted.append("evil.txt")
        assert cache.get(("q", False)) == ["a.txt", "b.txt"]

    def test_mutating_returned_list_does_not_corrupt_cache(self):
        cache = QueryCache(capacity=4)
        cache.put(("q", False), ["a.txt"])
        first = cache.get(("q", False))
        first.clear()
        assert cache.get(("q", False)) == ["a.txt"]

    def test_engine_results_survive_caller_mutation(self, tiny_fs):
        from repro.engine import SequentialIndexer

        report = SequentialIndexer(tiny_fs).build()
        caching = CachingQueryEngine(QueryEngine(report.index))
        query = sorted(report.index.terms())[0]
        expected = list(caching.search(query))
        caching.search(query).append("garbage")
        assert caching.search(query) == expected


# -- invalidation after refresh ----------------------------------------


class TestInvalidateAfterRefresh:
    def build(self):
        from repro.fsmodel import VirtualFileSystem
        from repro.index.incremental import IncrementalIndexer

        fs = VirtualFileSystem()
        fs.write_file("a.txt", b"needle here")
        fs.write_file("b.txt", b"just hay")
        indexer = IncrementalIndexer(fs)
        indexer.refresh()
        caching = CachingQueryEngine(QueryEngine(indexer.index.index))
        return fs, indexer, caching

    def test_add_modify_remove_never_served_stale(self):
        fs, indexer, caching = self.build()
        assert caching.search("needle") == ["a.txt"]

        fs.write_file("c.txt", b"fresh needle")   # add
        fs.replace_file("b.txt", b"needle now")   # modify
        fs.remove_file("a.txt")                   # remove
        report = indexer.refresh()
        assert report.added and report.modified and report.removed
        caching.invalidate()
        assert caching.search("needle") == ["b.txt", "c.txt"]
        # and repeats come from the refreshed cache, still correct
        assert caching.search("needle") == ["b.txt", "c.txt"]

    def test_without_invalidate_result_is_stale(self):
        # The reason invalidate() exists: the cache would happily keep
        # serving pre-refresh postings.
        fs, indexer, caching = self.build()
        assert caching.search("needle") == ["a.txt"]
        fs.write_file("c.txt", b"fresh needle")
        indexer.refresh()
        assert caching.search("needle") == ["a.txt"]  # stale hit
        caching.invalidate()
        assert caching.search("needle") == ["a.txt", "c.txt"]
