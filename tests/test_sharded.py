"""Tests for the lock-striped shared index (the sharding extension)."""

import pytest

from repro.engine import Implementation, SequentialIndexer, ThreadConfig
from repro.engine.impl1_sharded import ShardedLockedIndexer
from repro.index import InvertedIndex
from repro.index.sharded import ShardedInvertedIndex
from repro.text import TermBlock


def block(path, *terms):
    return TermBlock(path, tuple(terms))


class TestShardedInvertedIndex:
    def test_add_and_lookup(self):
        index = ShardedInvertedIndex(shards=4)
        index.add_block(block("f1", "cat", "dog"))
        index.add_block(block("f2", "cat"))
        assert sorted(index.lookup("cat")) == ["f1", "f2"]
        assert index.lookup("dog") == ["f1"]

    def test_counts(self):
        index = ShardedInvertedIndex(shards=4)
        index.add_block(block("f1", "a", "b", "c"))
        assert len(index) == 3
        assert index.posting_count == 3
        assert index.block_count == 1

    def test_contains_and_terms(self):
        index = ShardedInvertedIndex(shards=8)
        index.add_block(block("f", "x", "y"))
        assert "x" in index and "z" not in index
        assert sorted(index.terms()) == ["x", "y"]

    def test_terms_route_to_stable_shards(self):
        index = ShardedInvertedIndex(shards=8)
        assert index.shard_for("term") == index.shard_for("term")
        assert 0 <= index.shard_for("term") < 8

    def test_equals_plain_index(self):
        sharded = ShardedInvertedIndex(shards=4)
        plain = InvertedIndex()
        for b in (block("f1", "a", "b"), block("f2", "b", "c")):
            sharded.add_block(b)
            plain.add_block(b)
        assert sharded == plain
        assert sharded.to_inverted_index() == plain

    def test_single_shard_degenerates(self):
        index = ShardedInvertedIndex(shards=1)
        index.add_block(block("f", "a", "b"))
        assert index.shard_count == 1
        assert len(index) == 2

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedInvertedIndex(shards=0)

    def test_concurrent_writers_consistent(self):
        import threading

        index = ShardedInvertedIndex(shards=8)
        blocks = [
            block(f"f{i}", f"term{i % 20}", f"other{i % 13}", "shared")
            for i in range(200)
        ]

        def writer(chunk):
            for b in chunk:
                index.add_block(b)

        threads = [
            threading.Thread(target=writer, args=(blocks[i::4],), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        expected = InvertedIndex()
        for b in blocks:
            expected.add_block(b)
        assert index == expected


class TestShardedEngine:
    def test_matches_sequential(self, tiny_fs):
        sequential = SequentialIndexer(tiny_fs, naive=False).build()
        report = ShardedLockedIndexer(tiny_fs, shards=8).build(
            ThreadConfig(3, 2, 0)
        )
        assert report.index.to_inverted_index() == sequential.index

    def test_inline_mode(self, tiny_fs):
        report = ShardedLockedIndexer(tiny_fs, shards=4).build(
            ThreadConfig(3, 0, 0)
        )
        assert report.term_count > 0
        assert report.posting_count == report.index.posting_count


class TestShardedSimulation:
    @pytest.fixture(scope="class")
    def pipeline(self, tiny_workload):
        from repro.platforms import MANYCORE_32
        from repro.simengine import SimPipeline

        return SimPipeline(MANYCORE_32, tiny_workload, batches_per_extractor=20)

    def test_sharding_reduces_lock_wait(self, pipeline):
        config = ThreadConfig(8, 4, 0)
        single = pipeline.run(Implementation.SHARED_LOCKED, config, shards=1)
        striped = pipeline.run(Implementation.SHARED_LOCKED, config, shards=8)
        assert striped.lock_wait_s <= single.lock_wait_s

    def test_sharding_never_slower(self, pipeline):
        config = ThreadConfig(8, 4, 0)
        single = pipeline.run(Implementation.SHARED_LOCKED, config, shards=1)
        striped = pipeline.run(Implementation.SHARED_LOCKED, config, shards=16)
        assert striped.total_s <= single.total_s * 1.01

    def test_invalid_shards(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.run(
                Implementation.SHARED_LOCKED, ThreadConfig(2, 0, 0), shards=0
            )
