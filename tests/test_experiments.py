"""Tests for the experiment drivers and table rendering (small/fast).

The full-fidelity paper reproduction lives in tests/test_reproduction.py
and the benchmarks; these tests exercise the machinery on small sweeps.
"""

import pytest

from repro.corpus.profiles import PAPER_PROFILE
from repro.engine.config import Implementation, ThreadConfig
from repro.experiments import (
    PAPER_BEST,
    PAPER_SEQUENTIAL,
    PAPER_STAGE_TIMES,
    render_best_config_table,
    render_table1,
    run_best_config_table,
    run_table1,
)
from repro.platforms import ALL_PLATFORMS, QUAD_CORE
from repro.simengine import Workload, WorkloadSpec


@pytest.fixture(scope="module")
def small_workload():
    return Workload.synthesize(
        WorkloadSpec(profile=PAPER_PROFILE.scaled(0.02, name="exp-test"))
    )


class TestPaperData:
    def test_all_platforms_covered(self):
        for platform in ALL_PLATFORMS:
            assert platform.name in PAPER_STAGE_TIMES
            assert platform.name in PAPER_SEQUENTIAL
            assert platform.name in PAPER_BEST

    def test_each_table_has_three_rows(self):
        for entries in PAPER_BEST.values():
            assert set(entries) == set(Implementation)

    def test_paper_configs_valid(self):
        for entries in PAPER_BEST.values():
            for implementation, entry in entries.items():
                entry.config.validate_for(implementation)

    def test_impl1_variance_is_reference(self):
        for entries in PAPER_BEST.values():
            assert entries[Implementation.SHARED_LOCKED].variance_vs_impl1_pct == 0.0


class TestRunTable1:
    def test_rows_for_each_platform(self, small_workload):
        rows = run_table1(small_workload)
        assert [row.platform for row in rows] == [p.name for p in ALL_PLATFORMS]

    def test_single_platform(self, small_workload):
        rows = run_table1(small_workload, platforms=[QUAD_CORE])
        assert len(rows) == 1

    def test_extract_time_exceeds_read(self, small_workload):
        for row in run_table1(small_workload):
            assert row.read_and_extract > row.read_files


class TestRunBestConfigTable:
    @pytest.fixture(scope="class")
    def table(self, small_workload):
        return run_best_config_table(
            QUAD_CORE,
            small_workload,
            max_extractors=4,
            max_updaters=2,
            batches_per_extractor=20,
        )

    def test_three_rows(self, table):
        assert [row.implementation for row in table.rows] == list(Implementation)

    def test_speedups_positive(self, table):
        for row in table.rows:
            assert row.speedup > 1.0

    def test_variance_reference_is_impl1(self, table):
        assert table.row_for(
            Implementation.SHARED_LOCKED
        ).variance_vs_impl1_pct == pytest.approx(0.0)

    def test_variance_consistent_with_speedups(self, table):
        impl1 = table.row_for(Implementation.SHARED_LOCKED)
        for row in table.rows:
            expected = (row.speedup / impl1.speedup - 1.0) * 100
            assert row.variance_vs_impl1_pct == pytest.approx(expected)

    def test_configs_within_sweep_bounds(self, table):
        for row in table.rows:
            assert row.config.extractors <= 4
            assert row.config.updaters <= 2

    def test_row_for_unknown_raises(self, table):
        table_copy = type(table)(platform="x", sequential_s=1.0, rows=[])
        with pytest.raises(KeyError):
            table_copy.row_for(Implementation.SHARED_LOCKED)


class TestRendering:
    def test_table1_text(self, small_workload):
        text = render_table1(run_table1(small_workload, platforms=[QUAD_CORE]))
        assert "Table 1" in text
        assert "quad-core" in text
        assert "(paper)" in text

    def test_table1_without_comparison(self, small_workload):
        text = render_table1(
            run_table1(small_workload, platforms=[QUAD_CORE]), compare=False
        )
        assert "(paper)" not in text

    def test_best_config_text(self, small_workload):
        table = run_best_config_table(
            QUAD_CORE,
            small_workload,
            max_extractors=3,
            max_updaters=2,
            batches_per_extractor=10,
        )
        text = render_best_config_table(table)
        assert "Sequential" in text
        assert "Implementation 1" in text
        assert "speed-up" in text
        assert "(paper)" in text
