"""Tests for the FNV hash functions."""

import pytest

from repro.hashing import (
    FNV1_32_INIT,
    FNV1_64_INIT,
    IncrementalFnv1a,
    fnv1_32,
    fnv1_64,
    fnv1a_32,
    fnv1a_64,
)


class TestKnownVectors:
    """Official test vectors from Noll's FNV reference page."""

    def test_fnv1_32_empty(self):
        assert fnv1_32(b"") == FNV1_32_INIT

    def test_fnv1_64_empty(self):
        assert fnv1_64(b"") == FNV1_64_INIT

    def test_fnv1a_32_a(self):
        assert fnv1a_32(b"a") == 0xE40C292C

    def test_fnv1a_32_foobar(self):
        assert fnv1a_32(b"foobar") == 0xBF9CF968

    def test_fnv1a_64_a(self):
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_fnv1a_64_foobar(self):
        assert fnv1a_64(b"foobar") == 0x85944171F73967E8

    def test_fnv1_32_a(self):
        assert fnv1_32(b"a") == 0x050C5D7E

    def test_fnv1_64_a(self):
        assert fnv1_64(b"a") == 0xAF63BD4C8601B7BE


class TestInputHandling:
    def test_str_hashed_as_utf8(self):
        assert fnv1a_64("foobar") == fnv1a_64(b"foobar")

    def test_bytearray_accepted(self):
        assert fnv1a_64(bytearray(b"xyz")) == fnv1a_64(b"xyz")

    def test_memoryview_accepted(self):
        assert fnv1a_32(memoryview(b"xyz")) == fnv1a_32(b"xyz")

    def test_non_ascii_str(self):
        assert fnv1a_64("héllo") == fnv1a_64("héllo".encode("utf-8"))

    def test_rejects_int(self):
        with pytest.raises(TypeError):
            fnv1a_64(12345)

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            fnv1_32(None)


class TestRanges:
    def test_32_bit_output_fits(self):
        for word in ("", "a", "hello world", "x" * 100):
            assert 0 <= fnv1_32(word) < 2**32
            assert 0 <= fnv1a_32(word) < 2**32

    def test_64_bit_output_fits(self):
        for word in ("", "a", "hello world", "x" * 100):
            assert 0 <= fnv1_64(word) < 2**64
            assert 0 <= fnv1a_64(word) < 2**64

    def test_variants_differ_on_nonempty_input(self):
        assert fnv1_32(b"hello") != fnv1a_32(b"hello")
        assert fnv1_64(b"hello") != fnv1a_64(b"hello")


class TestIncremental:
    def test_matches_one_shot(self):
        hasher = IncrementalFnv1a()
        hasher.update(b"hello ").update(b"world")
        assert hasher.digest() == fnv1a_64(b"hello world")

    def test_empty_matches_basis(self):
        assert IncrementalFnv1a().digest() == FNV1_64_INIT

    def test_byte_at_a_time(self):
        hasher = IncrementalFnv1a()
        for i in range(len(b"foobar")):
            hasher.update(b"foobar"[i : i + 1])
        assert hasher.digest() == 0x85944171F73967E8

    def test_reset(self):
        hasher = IncrementalFnv1a()
        hasher.update(b"junk")
        hasher.reset()
        assert hasher.digest() == FNV1_64_INIT
        hasher.update(b"a")
        assert hasher.digest() == fnv1a_64(b"a")

    def test_digest_does_not_finalize(self):
        hasher = IncrementalFnv1a()
        hasher.update(b"foo")
        mid = hasher.digest()
        assert mid == fnv1a_64(b"foo")
        hasher.update(b"bar")
        assert hasher.digest() == fnv1a_64(b"foobar")
