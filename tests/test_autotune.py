"""Tests for the auto-tuner: space, strategies, memoization."""

import pytest

from repro.autotune import (
    AutoTuner,
    ConfigurationSpace,
    ExhaustiveSearch,
    HillClimbing,
    RandomSearch,
)
from repro.engine.config import Implementation, ThreadConfig


def quadratic_objective(optimum: ThreadConfig):
    """Convex bowl with its minimum at ``optimum``; easy to climb."""

    def objective(config: ThreadConfig) -> float:
        return (
            (config.extractors - optimum.extractors) ** 2
            + (config.updaters - optimum.updaters) ** 2
            + (config.joiners - optimum.joiners) ** 2
        )

    return objective


class TestConfigurationSpace:
    def test_all_configs_valid(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 4, 3)
        for config in space:
            config.validate_for(Implementation.SHARED_LOCKED)

    def test_size_impl1(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 4, 3)
        assert len(space.configurations()) == 4 * 4  # y in 0..3, z = 0

    def test_impl2_has_joiners(self):
        space = ConfigurationSpace(Implementation.REPLICATED_JOINED, 4, 3, 2)
        assert all(c.joiners in (1, 2) for c in space)

    def test_contains(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 4, 3)
        assert space.contains(ThreadConfig(4, 3, 0))
        assert not space.contains(ThreadConfig(5, 0, 0))
        assert not space.contains(ThreadConfig(3, 0, 1))  # invalid for impl1

    def test_neighbours_within_space(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 4, 3)
        for neighbour in space.neighbours(ThreadConfig(2, 1, 0)):
            assert space.contains(neighbour)

    def test_neighbours_are_adjacent(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 8, 4)
        config = ThreadConfig(3, 2, 0)
        for neighbour in space.neighbours(config):
            distance = (
                abs(neighbour.extractors - config.extractors)
                + abs(neighbour.updaters - config.updaters)
                + abs(neighbour.joiners - config.joiners)
            )
            assert distance == 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(Implementation.SHARED_LOCKED, 0)


class TestAutoTuner:
    def test_memoizes(self):
        calls = []

        def objective(config):
            calls.append(config)
            return 1.0

        tuner = AutoTuner(objective)
        config = ThreadConfig(1, 0, 0)
        tuner.evaluate(config)
        tuner.evaluate(config)
        assert len(calls) == 1
        assert tuner.evaluations == 1

    def test_result_before_evaluation_rejected(self):
        with pytest.raises(RuntimeError):
            AutoTuner(lambda c: 0.0).result()

    def test_result_best(self):
        tuner = AutoTuner(lambda c: float(c.extractors))
        tuner.evaluate(ThreadConfig(3, 0, 0))
        tuner.evaluate(ThreadConfig(1, 0, 0))
        result = tuner.result()
        assert result.best_config == ThreadConfig(1, 0, 0)
        assert result.best_value == 1.0

    def test_top_sorted(self):
        tuner = AutoTuner(lambda c: float(c.extractors))
        for x in (3, 1, 2):
            tuner.evaluate(ThreadConfig(x, 0, 0))
        top = tuner.result().top(2)
        assert [c.extractors for c, _ in top] == [1, 2]


class TestStrategies:
    def test_exhaustive_finds_optimum(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 6, 4)
        optimum = ThreadConfig(4, 2, 0)
        result = ExhaustiveSearch().run(space, quadratic_objective(optimum))
        assert result.best_config == optimum
        assert result.evaluations == len(space.configurations())

    def test_random_respects_budget(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 8, 6)
        result = RandomSearch(budget=10, seed=1).run(
            space, quadratic_objective(ThreadConfig(3, 3, 0))
        )
        assert result.evaluations == 10

    def test_random_deterministic_per_seed(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 8, 6)
        objective = quadratic_objective(ThreadConfig(3, 3, 0))
        a = RandomSearch(budget=10, seed=5).run(space, objective)
        b = RandomSearch(budget=10, seed=5).run(space, objective)
        assert a.best_config == b.best_config

    def test_hill_climbing_finds_convex_optimum(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 8, 6)
        optimum = ThreadConfig(5, 2, 0)
        result = HillClimbing(restarts=2, seed=0).run(
            space, quadratic_objective(optimum)
        )
        assert result.best_config == optimum

    def test_hill_climbing_cheaper_than_exhaustive(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 12, 6)
        objective = quadratic_objective(ThreadConfig(5, 2, 0))
        hill = HillClimbing(restarts=2, seed=0).run(space, objective)
        assert hill.evaluations < len(space.configurations())

    def test_hill_climbing_budget(self):
        space = ConfigurationSpace(Implementation.SHARED_LOCKED, 12, 6)
        result = HillClimbing(restarts=10, budget=15, seed=0).run(
            space, quadratic_objective(ThreadConfig(5, 2, 0))
        )
        # Budget may be slightly exceeded while finishing a neighbourhood.
        assert result.evaluations <= 15 + 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomSearch(budget=0)
        with pytest.raises(ValueError):
            HillClimbing(restarts=0)


class TestTunerOnSimulator:
    def test_tunes_simulated_pipeline(self, tiny_workload):
        from repro.platforms import QUAD_CORE
        from repro.simengine import SimPipeline

        pipeline = SimPipeline(QUAD_CORE, tiny_workload, batches_per_extractor=10)
        space = ConfigurationSpace(
            Implementation.REPLICATED_UNJOINED, max_extractors=4, max_updaters=2
        )
        result = ExhaustiveSearch().run(
            space,
            lambda config: pipeline.run(
                Implementation.REPLICATED_UNJOINED, config
            ).total_s,
        )
        assert space.contains(result.best_config)
        assert result.best_value > 0
