"""Unit tests for the sensitivity-analysis machinery (small scale;
the full study runs in benchmarks/test_extension_sensitivity.py)."""

import pytest

from repro.corpus.profiles import PAPER_PROFILE
from repro.engine.config import Implementation
from repro.experiments.sensitivity import (
    FITTED_PARAMETERS,
    SensitivityPoint,
    SensitivityReport,
    render_sensitivity,
    sweep_parameter,
)
from repro.platforms import QUAD_CORE
from repro.simengine import Workload, WorkloadSpec


@pytest.fixture(scope="module")
def small_workload():
    return Workload.synthesize(
        WorkloadSpec(profile=PAPER_PROFILE.scaled(0.02, name="sens-test"))
    )


@pytest.fixture(scope="module")
def report(small_workload):
    return sweep_parameter(
        QUAD_CORE,
        small_workload,
        "shared_coherence",
        scales=(0.5, 1.0, 2.0),
        max_extractors=3,
        max_updaters=2,
        batches_per_extractor=15,
    )


class TestSweepParameter:
    def test_one_point_per_scale(self, report):
        assert [p.scale for p in report.points] == [0.5, 1.0, 2.0]

    def test_values_scaled_from_baseline(self, report):
        assert report.points[0].value == pytest.approx(
            report.baseline_value * 0.5
        )

    def test_all_implementations_measured(self, report):
        for point in report.points:
            assert set(point.speedups) == set(Implementation)

    def test_unknown_parameter_rejected(self, small_workload):
        with pytest.raises(ValueError):
            sweep_parameter(QUAD_CORE, small_workload, "clock_ghz")

    def test_fitted_parameter_list_valid(self):
        for parameter in FITTED_PARAMETERS:
            assert hasattr(QUAD_CORE, parameter)

    def test_aggregate_floor_respected(self, small_workload):
        # Scaling the aggregate below the single-stream bandwidth would
        # make the profile invalid; the sweep clamps instead.
        report = sweep_parameter(
            QUAD_CORE, small_workload, "aggregate_mbps",
            scales=(0.1,), max_extractors=2, max_updaters=1,
            batches_per_extractor=10,
        )
        assert report.points[0].speedups  # ran without ValueError


class TestReportHelpers:
    def test_ordering(self):
        point = SensitivityPoint("p", 1.0, 1.0, speedups={
            Implementation.SHARED_LOCKED: 2.0,
            Implementation.REPLICATED_JOINED: 2.5,
            Implementation.REPLICATED_UNJOINED: 3.0,
        })
        assert point.ordering() == [
            Implementation.SHARED_LOCKED,
            Implementation.REPLICATED_JOINED,
            Implementation.REPLICATED_UNJOINED,
        ]

    def test_ordering_stable(self, report):
        assert isinstance(report.ordering_stable(), bool)

    def test_speedup_range_nonnegative(self, report):
        for implementation in Implementation:
            assert report.speedup_range(implementation) >= 0.0

    def test_render(self, report):
        text = render_sensitivity(report)
        assert "shared_coherence" in text
        assert "0.50x" in text
        assert "ordering" in text
