"""Unit tests for the open-loop load generator.

The measurement tool gets measured: the Poisson schedule must be
seed-deterministic (both stacks replay identical arrivals), the
percentile math exact, the accounting conserved (completed + shed +
errors == issued), and the ``loadgen.query`` obs spans must reproduce
the driver's own percentiles — the cross-check the benchmark asserts.
"""

from __future__ import annotations

import math

import pytest

from repro.index.inverted import InvertedIndex
from repro.obs import recorder as obsrec
from repro.service import (
    AsyncSearchFrontend,
    IndexSnapshot,
    OpenLoopLoadGenerator,
    QuerySpec,
    SearchService,
)
from repro.service.loadgen import percentile, summarize_spans
from repro.text.termblock import TermBlock

SPECS = [QuerySpec("alpha"), QuerySpec("alpha AND bravo"), QuerySpec("bravo")]


def tiny_snapshot() -> IndexSnapshot:
    index = InvertedIndex()
    index.add_block(TermBlock("doc.txt", ("alpha", "bravo")))
    index.add_block(TermBlock("other.txt", ("bravo",)))
    return IndexSnapshot(index)


class TestPercentile:
    def test_exact_interpolation(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile([7.0], 99) == 7.0

    def test_empty_is_nan_and_bounds_raise(self):
        assert math.isnan(percentile([], 50))
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestNanHygiene:
    """An unmeasured run must fail loudly or serialize as null — a bare
    ``NaN`` token in a ``BENCH_*.json`` is not JSON and poisons every
    downstream comparison silently."""

    def empty_result(self):
        from repro.service.loadgen import LoadRunResult

        return LoadRunResult(label="empty", offered_qps=10.0,
                             duration_s=1.0, warmup_s=2.0)

    def test_to_dict_emits_null_not_nan(self):
        import json

        digest = self.empty_result().to_dict()
        assert digest["p50_ms"] is None
        assert digest["p99_ms"] is None
        # strict serialization must succeed — no NaN tokens anywhere
        text = json.dumps(digest, allow_nan=False)
        assert "NaN" not in text

    def test_require_measured_raises_with_the_accounting(self):
        result = self.empty_result()
        with pytest.raises(ValueError, match="0 measured"):
            result.require_measured()
        result.measured = 5
        assert result.require_measured(minimum=5) is result
        with pytest.raises(ValueError):
            result.require_measured(minimum=6)

    def test_format_ms_prints_na_for_unmeasured(self):
        from repro.service.loadgen import format_ms

        assert format_ms(float("nan")) == "n/a"
        assert format_ms(1.23456) == "1.23"


class TestSchedule:
    def test_same_seed_same_arrivals(self):
        a = OpenLoopLoadGenerator(SPECS, offered_qps=500, duration_s=0.5,
                                  seed=42)
        b = OpenLoopLoadGenerator(SPECS, offered_qps=500, duration_s=0.5,
                                  seed=42)
        assert a.arrivals == b.arrivals
        assert all(arrival.at < 0.5 for arrival in a.arrivals)
        # ~500 qps x 0.5 s: a Poisson count far from 0 and far from 2x.
        assert 150 < len(a.arrivals) < 450

    def test_different_seed_different_arrivals(self):
        a = OpenLoopLoadGenerator(SPECS, offered_qps=500, duration_s=0.5,
                                  seed=1)
        b = OpenLoopLoadGenerator(SPECS, offered_qps=500, duration_s=0.5,
                                  seed=2)
        assert a.arrivals != b.arrivals

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator([], offered_qps=10, duration_s=1)
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator(SPECS, offered_qps=0, duration_s=1)
        with pytest.raises(ValueError):
            OpenLoopLoadGenerator(SPECS, offered_qps=10, duration_s=1,
                                  warmup_s=1.0)


class TestDrivers:
    @pytest.fixture(autouse=True)
    def fresh_recorder(self):
        previous = obsrec.set_recorder(obsrec.Recorder(enabled=True))
        yield
        obsrec.set_recorder(previous)

    def test_frontend_driver_accounting_and_span_crosscheck(self):
        generator = OpenLoopLoadGenerator(
            SPECS, offered_qps=400, duration_s=0.3, warmup_s=0.1, seed=3
        )
        service = SearchService(tiny_snapshot(), workers=1, max_inflight=32)
        frontend = AsyncSearchFrontend(service, workers=1, own_service=True)
        try:
            result = generator.run_frontend(frontend)
        finally:
            frontend.close()
        assert result.issued == len(generator.arrivals)
        assert result.completed + result.shed + result.errors == result.issued
        assert result.errors == 0
        assert 0 < result.measured <= result.issued
        assert math.isfinite(result.p99_ms) and result.p99_ms > 0
        spans = summarize_spans(
            obsrec.get_recorder().spans, label="frontend"
        )
        assert spans["count"] == result.measured
        assert math.isclose(spans["p95_ms"], result.p95_ms, rel_tol=1e-9)

    def test_service_driver_accounting(self):
        generator = OpenLoopLoadGenerator(
            SPECS, offered_qps=400, duration_s=0.3, warmup_s=0.1, seed=3
        )
        service = SearchService(tiny_snapshot(), workers=1, max_inflight=32)
        try:
            result = generator.run_service(service, workers=4)
        finally:
            service.close()
        assert result.issued == len(generator.arrivals)
        assert result.completed + result.shed + result.errors == result.issued
        assert result.errors == 0
        digest = result.to_dict()
        assert digest["label"] == "service"
        assert digest["issued"] == result.issued
