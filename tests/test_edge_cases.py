"""Edge-case tests: empty corpora, single files, degenerate shapes."""

import pytest

from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.fsmodel import VirtualFileSystem
from repro.index import InvertedIndex, MultiIndex
from repro.query import QueryEngine
from repro.text import TermBlock


@pytest.fixture
def empty_fs():
    return VirtualFileSystem()


@pytest.fixture
def single_file_fs():
    fs = VirtualFileSystem()
    fs.write_file("only.txt", b"a single file with words")
    return fs


class TestEmptyCorpus:
    def test_sequential(self, empty_fs):
        report = SequentialIndexer(empty_fs).build()
        assert report.file_count == 0
        assert report.term_count == 0

    @pytest.mark.parametrize(
        "implementation,config",
        [
            (Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)),
            (Implementation.REPLICATED_JOINED, ThreadConfig(2, 2, 1)),
            (Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)),
        ],
    )
    def test_parallel(self, empty_fs, implementation, config):
        report = IndexGenerator(empty_fs).build(implementation, config)
        assert report.file_count == 0
        assert report.term_count == 0

    def test_query_over_empty_index(self):
        engine = QueryEngine(InvertedIndex(), universe=[])
        assert engine.search("anything") == []
        assert engine.search("NOT anything") == []


class TestSingleFile:
    def test_more_extractors_than_files(self, single_file_fs):
        report = IndexGenerator(single_file_fs).build(
            Implementation.SHARED_LOCKED, ThreadConfig(8, 2, 0)
        )
        assert report.file_count == 1
        assert set(report.lookup("single")) == {"only.txt"}

    def test_replicated_with_one_file(self, single_file_fs):
        report = IndexGenerator(single_file_fs).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(4, 2, 0)
        )
        assert isinstance(report.index, MultiIndex)
        assert report.posting_count == report.term_count  # one file

    def test_dynamic_modes_with_one_file(self, single_file_fs):
        for dynamic in ("steal", "queue"):
            report = IndexGenerator(single_file_fs, dynamic=dynamic).build(
                Implementation.SHARED_LOCKED, ThreadConfig(4, 0, 0)
            )
            assert report.file_count == 1


class TestDegenerateContent:
    def test_empty_file_indexed(self):
        fs = VirtualFileSystem()
        fs.write_file("empty.txt", b"")
        fs.write_file("full.txt", b"words here")
        report = SequentialIndexer(fs).build()
        assert report.file_count == 2
        assert report.lookup("words") == ["full.txt"]

    def test_file_with_only_separators(self):
        fs = VirtualFileSystem()
        fs.write_file("seps.txt", b"... --- !!! \n\n\t")
        report = SequentialIndexer(fs).build()
        assert report.term_count == 0

    def test_file_with_one_giant_token(self):
        fs = VirtualFileSystem()
        fs.write_file("blob.txt", b"x" * 10_000)
        report = SequentialIndexer(fs).build()
        # Truncated at the tokenizer's max_length, but indexed.
        assert report.term_count == 1
        term = next(iter(report.index.terms()))
        assert len(term) == 64

    def test_identical_files(self):
        fs = VirtualFileSystem()
        fs.write_file("a.txt", b"same content")
        fs.write_file("b.txt", b"same content")
        report = IndexGenerator(fs).build(
            Implementation.REPLICATED_JOINED, ThreadConfig(2, 2, 1)
        )
        assert sorted(report.lookup("same")) == ["a.txt", "b.txt"]


class TestDegenerateIndexOperations:
    def test_join_of_empty_replicas(self):
        from repro.index import join_indices

        assert len(join_indices([InvertedIndex(), InvertedIndex()])) == 0

    def test_multi_index_over_empty_replicas(self):
        multi = MultiIndex([InvertedIndex()])
        assert multi.lookup("x") == []
        assert len(multi) == 0

    def test_block_with_no_terms(self):
        index = InvertedIndex()
        index.add_block(TermBlock("empty-file", ()))
        assert index.block_count == 1
        assert len(index) == 0

    def test_serialize_empty_index(self, tmp_path):
        from repro.index import load_index, save_index

        path = str(tmp_path / "empty.idx")
        save_index(InvertedIndex(), path)
        assert len(load_index(path)) == 0
