"""Tests for the markdown comparison report."""

import pytest

from repro.corpus.profiles import PAPER_PROFILE
from repro.experiments import (
    best_config_markdown,
    comparison_report,
    run_best_config_table,
    run_table1,
    table1_markdown,
)
from repro.platforms import ALL_PLATFORMS, QUAD_CORE
from repro.simengine import Workload, WorkloadSpec


@pytest.fixture(scope="module")
def results():
    workload = Workload.synthesize(
        WorkloadSpec(profile=PAPER_PROFILE.scaled(0.02, name="report-test"))
    )
    out = {"table1": run_table1(workload)}
    for platform in ALL_PLATFORMS:
        out[platform.name] = run_best_config_table(
            platform, workload,
            max_extractors=4, max_updaters=2, batches_per_extractor=20,
        )
    return out


class TestTable1Markdown:
    def test_has_paper_column(self, results):
        text = table1_markdown(results["table1"])
        assert "| paper (s) |" in text
        assert "| 77.0 |" in text  # the paper's 4-core read time

    def test_all_platforms_present(self, results):
        text = table1_markdown(results["table1"])
        for platform in ALL_PLATFORMS:
            assert platform.name in text


class TestBestConfigMarkdown:
    def test_mentions_sequential_baselines(self, results):
        text = best_config_markdown(results["quad-core"])
        assert "paper 220.0 s" in text

    def test_has_all_implementations(self, results):
        text = best_config_markdown(results["quad-core"])
        for n in (1, 2, 3):
            assert f"Implementation {n}" in text

    def test_paper_configs_present(self, results):
        text = best_config_markdown(results["quad-core"])
        assert "(3, 1, 0)" in text  # the paper's Impl1 config

    def test_unknown_platform_graceful(self, results):
        table = results["quad-core"]
        table.platform = "mystery-machine"
        try:
            text = best_config_markdown(table)
            assert "| - | - | - " in text
        finally:
            table.platform = "quad-core"


class TestComparisonReport:
    def test_full_report_structure(self, results):
        text = comparison_report(results)
        assert text.startswith("# Reproduction report")
        assert "## Table 1" in text
        assert "## Table 2" in text
        assert "## Table 4" in text
        assert "## Verdict" in text

    def test_verdict_reports_deviation(self, results):
        text = comparison_report(results)
        assert "deviation from the paper" in text

    def test_verdict_checks_orderings(self, results):
        # At this tiny scale orderings may legitimately deviate; the
        # verdict must state one of its two defined outcomes.
        text = comparison_report(results)
        assert ("orderings match" in text) or ("ordering deviates" in text)
