"""Tests for the positional index and phrase queries."""

import pytest

from repro.index import InvertedIndex
from repro.index.positional import PositionalIndex
from repro.query import Phrase, QueryEngine, Term, parse_query
from repro.query.ast import And
from repro.text import TermBlock, Tokenizer


class TestPositionalIndex:
    @pytest.fixture
    def index(self):
        index = PositionalIndex()
        index.add_document("f1", ["the", "quick", "brown", "fox"])
        index.add_document("f2", ["quick", "brown", "dog", "quick", "fox"])
        index.add_document("f3", ["brown", "quick"])
        return index

    def test_positions(self, index):
        assert index.positions("quick", "f1") == [1]
        assert index.positions("quick", "f2") == [0, 3]
        assert index.positions("missing", "f1") == []

    def test_paths_containing(self, index):
        assert sorted(index.paths_containing("brown")) == ["f1", "f2", "f3"]
        assert index.paths_containing("ghost") == []

    def test_document_count(self, index):
        assert index.document_count == 3

    def test_phrase_two_words(self, index):
        assert index.phrase_paths(["quick", "brown"]) == ["f1", "f2"]

    def test_phrase_order_matters(self, index):
        assert index.phrase_paths(["brown", "quick"]) == ["f3"]

    def test_phrase_three_words(self, index):
        assert index.phrase_paths(["the", "quick", "brown"]) == ["f1"]

    def test_phrase_nonadjacent_rejected(self, index):
        # "quick fox" is adjacent in f2 (positions 3,4) but not in f1
        # (positions 1,3); "brown fox" is adjacent only in f1.
        assert index.phrase_paths(["quick", "fox"]) == ["f2"]
        assert index.phrase_paths(["brown", "fox"]) == ["f1"]

    def test_phrase_single_word(self, index):
        assert index.phrase_paths(["quick"]) == ["f1", "f2", "f3"]

    def test_phrase_empty(self, index):
        assert index.phrase_paths([]) == []

    def test_phrase_unknown_word(self, index):
        assert index.phrase_paths(["quick", "unicorn"]) == []

    def test_repeated_word_phrase(self):
        index = PositionalIndex()
        index.add_document("f", ["ho", "ho", "ho"])
        index.add_document("g", ["ho", "hum", "ho"])
        assert index.phrase_paths(["ho", "ho"]) == ["f"]
        assert index.phrase_paths(["ho", "ho", "ho"]) == ["f"]

    def test_from_fs(self, tiny_fs, tokenizer):
        index = PositionalIndex.from_fs(tiny_fs, tokenizer)
        assert index.document_count == len(list(tiny_fs.list_files()))
        ref = next(iter(tiny_fs.list_files()))
        terms = tokenizer.tokenize(tiny_fs.read_file(ref.path))
        assert index.positions(terms[0], ref.path)[0] == terms.index(terms[0])


class TestPhraseParsing:
    def test_quoted_phrase(self):
        assert parse_query('"quick brown fox"') == Phrase(
            ("quick", "brown", "fox")
        )

    def test_phrase_lowercased(self):
        assert parse_query('"Quick BROWN"') == Phrase(("quick", "brown"))

    def test_single_word_quote_is_term(self):
        assert parse_query('"solo"') == Term("solo")

    def test_phrase_in_boolean_expression(self):
        query = parse_query('cat AND "quick brown"')
        assert query == And((Term("cat"), Phrase(("quick", "brown"))))

    def test_phrase_str_round_trip(self):
        query = parse_query('"a b" OR c')
        assert parse_query(str(query)) == query

    def test_empty_phrase_rejected(self):
        from repro.query import ParseError

        with pytest.raises(ParseError):
            parse_query('""')

    def test_phrase_node_requires_two_words(self):
        with pytest.raises(ValueError):
            Phrase(("solo",))


class TestPhraseEvaluation:
    @pytest.fixture
    def engine(self):
        boolean = InvertedIndex()
        positions = PositionalIndex()
        docs = {
            "f1": ["parallel", "software", "design"],
            "f2": ["software", "design", "parallel"],
            "f3": ["parallel", "design"],
        }
        for path, terms in docs.items():
            boolean.add_block(TermBlock(path, tuple(dict.fromkeys(terms))))
            positions.add_document(path, terms)
        return QueryEngine(boolean, universe=list(docs),
                           positions=positions)

    def test_phrase_search(self, engine):
        assert engine.search('"parallel software"') == ["f1"]
        assert engine.search('"software design"') == ["f1", "f2"]

    def test_phrase_with_boolean(self, engine):
        assert engine.search('"software design" AND parallel') == ["f1", "f2"]
        assert engine.search('"software design" AND NOT "parallel software"') == [
            "f2"
        ]

    def test_phrase_without_positions_raises(self):
        boolean = InvertedIndex()
        boolean.add_block(TermBlock("f", ("a", "b")))
        engine = QueryEngine(boolean)
        with pytest.raises(ValueError, match="positional"):
            engine.search('"a b"')

    def test_phrase_deduplicated_in_optimizer(self, engine):
        assert engine.search('"software design" OR "software design"') == (
            engine.search('"software design"')
        )

    def test_end_to_end_on_corpus(self, tiny_fs, tokenizer):
        from repro.engine import SequentialIndexer

        boolean = SequentialIndexer(tiny_fs, naive=False).build().index
        positions = PositionalIndex.from_fs(tiny_fs, tokenizer)
        engine = QueryEngine(boolean, positions=positions)
        # Take a real adjacent word pair from some file.
        ref = next(iter(tiny_fs.list_files()))
        terms = tokenizer.tokenize(tiny_fs.read_file(ref.path))
        phrase = f'"{terms[0]} {terms[1]}"'
        hits = engine.search(phrase)
        assert ref.path in hits
        # Every hit genuinely contains the pair adjacently.
        for path in hits:
            document_terms = tokenizer.tokenize(tiny_fs.read_file(path))
            assert any(
                document_terms[i] == terms[0]
                and document_terms[i + 1] == terms[1]
                for i in range(len(document_terms) - 1)
            )


class TestPositionalPersistence:
    def test_round_trip(self, tmp_path):
        index = PositionalIndex()
        index.add_document("f1", ["alpha", "beta", "alpha"])
        index.add_document("f2", ["beta", "gamma"])
        path = str(tmp_path / "pos.jidx")
        index.save(path)
        loaded = PositionalIndex.load(path)
        assert loaded.document_count == 2
        assert loaded.positions("alpha", "f1") == [0, 2]
        assert loaded.phrase_paths(["beta", "gamma"]) == ["f2"]

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(ValueError):
            PositionalIndex.load(str(path))

    def test_phrases_after_reload(self, tiny_fs, tokenizer, tmp_path):
        index = PositionalIndex.from_fs(tiny_fs, tokenizer)
        path = str(tmp_path / "corpus.pos")
        index.save(path)
        loaded = PositionalIndex.load(path)
        ref = next(iter(tiny_fs.list_files()))
        terms = tokenizer.tokenize(tiny_fs.read_file(ref.path))
        assert ref.path in loaded.phrase_paths([terms[0], terms[1]])
