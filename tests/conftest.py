"""Shared fixtures: tiny deterministic corpora and workloads.

Everything here is session-scoped and read-only; tests must not mutate
fixture objects (build a fresh index/engine per test instead).
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusGenerator, TINY_PROFILE
from repro.simengine import Workload
from repro.text import Tokenizer


@pytest.fixture(scope="session")
def tiny_corpus():
    """A ~60-file, ~400 KB deterministic corpus (read-only)."""
    return CorpusGenerator(TINY_PROFILE).generate()


@pytest.fixture(scope="session")
def tiny_fs(tiny_corpus):
    """The tiny corpus's virtual filesystem (read-only)."""
    return tiny_corpus.fs


@pytest.fixture(scope="session")
def tiny_workload(tiny_corpus):
    """Exact per-file statistics of the tiny corpus."""
    return Workload.from_corpus(tiny_corpus)


@pytest.fixture(scope="session")
def tokenizer():
    """A default tokenizer (stateless, safe to share)."""
    return Tokenizer()


@pytest.fixture(scope="session")
def tiny_reference_index(tiny_fs, tokenizer):
    """A dict-of-sets reference index built with plain Python, used to
    cross-check every engine implementation."""
    reference = {}
    for ref in tiny_fs.list_files():
        terms = set(tokenizer.tokenize(tiny_fs.read_file(ref.path)))
        for term in terms:
            reference.setdefault(term, set()).add(ref.path)
    return reference
