"""Property-based tests for the extension modules (binary format,
document formats, incremental maintenance, wildcard dictionary)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import default_registry
from repro.formats.docz import read_docz, write_docz
from repro.index import InvertedIndex
from repro.index.binfmt import (
    decode_gaps,
    decode_varint,
    dump_index_bytes,
    encode_gaps,
    encode_varint,
    load_index_bytes,
)
from repro.index.incremental import IncrementalIndex
from repro.query.wildcard import PrefixDictionary
from repro.text import TermBlock

terms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
paths = st.text(alphabet=string.ascii_lowercase + "/", min_size=1, max_size=12)


class TestVarintProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_round_trip(self, value):
        value_back, offset = decode_varint(encode_varint(value), 0)
        assert value_back == value

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=30))
    def test_concatenated_stream(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_varint(blob, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(blob)

    @given(st.sets(st.integers(min_value=0, max_value=100_000), max_size=60))
    def test_gap_round_trip(self, ids):
        ordered = sorted(ids)
        decoded, _ = decode_gaps(encode_gaps(ordered), 0, len(ordered))
        assert decoded == ordered


@st.composite
def indexes(draw):
    index = InvertedIndex()
    n = draw(st.integers(min_value=0, max_value=10))
    for i in range(n):
        block_terms = draw(st.lists(terms, max_size=5, unique=True))
        index.add_block(TermBlock(f"file{i}", tuple(block_terms)))
    return index


class TestBinaryFormatProperties:
    @given(indexes())
    @settings(max_examples=50)
    def test_round_trip_preserves_index(self, index):
        assert load_index_bytes(dump_index_bytes(index)) == index

    @given(indexes())
    @settings(max_examples=50)
    def test_serialization_canonical(self, index):
        blob = dump_index_bytes(index)
        assert dump_index_bytes(load_index_bytes(blob)) == blob


class TestFormatProperties:
    @given(st.binary(max_size=400))
    @settings(max_examples=60)
    def test_extractors_total(self, content):
        """No byte sequence may crash any extractor."""
        registry = default_registry()
        for fmt in registry.formats:
            fmt.extract_text(content)

    @given(st.binary(max_size=200))
    def test_detection_total(self, content):
        registry = default_registry()
        assert registry.detect("mystery.bin", content) is not None

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=255),
                      st.binary(max_size=40)),
            max_size=8,
        ),
        st.dictionaries(
            st.text(string.ascii_lowercase, min_size=1, max_size=6),
            st.text(string.ascii_lowercase, max_size=10),
            max_size=4,
        ),
    )
    def test_docz_round_trip(self, runs, metadata):
        blob = write_docz(runs, metadata)
        read_metadata, read_runs = read_docz(blob)
        assert read_metadata == metadata
        assert read_runs == runs


@st.composite
def churn_operations(draw):
    ops = []
    live = set()
    n = draw(st.integers(min_value=0, max_value=25))
    for i in range(n):
        kind = draw(st.sampled_from(["add", "remove", "update"]))
        if kind == "add" or not live:
            path = f"p{i}"
            live.add(path)
            ops.append(("add", path, draw(st.lists(terms, max_size=4,
                                                   unique=True))))
        elif kind == "remove":
            path = draw(st.sampled_from(sorted(live)))
            live.discard(path)
            ops.append(("remove", path, []))
        else:
            path = draw(st.sampled_from(sorted(live)))
            ops.append(("update", path, draw(st.lists(terms, max_size=4,
                                                      unique=True))))
    return ops


class TestIncrementalProperties:
    @given(churn_operations())
    @settings(max_examples=60, deadline=None)
    def test_always_equals_rebuild(self, operations):
        incremental = IncrementalIndex()
        live = {}
        for kind, path, block_terms in operations:
            block = TermBlock(path, tuple(block_terms))
            if kind == "add":
                if path in live:
                    incremental.update(block)
                else:
                    incremental.add(block)
                live[path] = block
            elif kind == "remove":
                incremental.remove(path)
                live.pop(path, None)
            else:
                incremental.update(block)
                live[path] = block
        rebuilt = InvertedIndex()
        for block in live.values():
            rebuilt.add_block(block)
        assert incremental.index == rebuilt
        assert sorted(incremental.document_paths()) == sorted(live)


class TestWildcardProperties:
    @given(st.lists(terms, min_size=1), terms)
    def test_expansion_is_exactly_the_matching_subset(self, words, prefix):
        dictionary = PrefixDictionary(words)
        expanded = set(dictionary.expand(prefix, limit=10_000))
        expected = {w for w in set(words) if w.startswith(prefix)}
        assert expanded == expected

    @given(st.lists(terms))
    def test_membership_matches_set(self, words):
        dictionary = PrefixDictionary(words)
        for word in set(words):
            assert word in dictionary
        assert "notaword123" not in dictionary
