"""CLI coverage for the on-disk serving path.

``index`` saving ``.ridx2`` (with frequencies baked in), ``search
--ondisk`` (boolean and BM25, plus the block-skip report), ``serve
--ondisk`` over a query file, and the flag-conflict rejections.
"""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    destination = str(tmp_path_factory.mktemp("ondisk-cli") / "corpus")
    assert main(["generate-corpus", destination, "--scale", "0.001"]) == 0
    return destination


@pytest.fixture(scope="module")
def ridx2_path(corpus_dir, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("ondisk-cli") / "index.ridx2")
    assert main(["index", corpus_dir, "--sequential", "--save", path]) == 0
    return path


class TestIndexSavesRidx2:
    def test_file_has_ridx2_magic(self, ridx2_path):
        with open(ridx2_path, "rb") as fh:
            assert fh.read(5) == b"RIDX2"

    def test_frequencies_are_baked_in(self, ridx2_path):
        from repro.index import MmapPostingsReader

        with MmapPostingsReader(ridx2_path) as reader:
            assert reader.has_freqs
            assert reader.doc_count == 51


class TestSearchOndisk:
    def term(self, ridx2_path):
        from repro.index import MmapPostingsReader

        with MmapPostingsReader(ridx2_path) as reader:
            return next(reader.terms())

    def test_boolean_matches_in_memory(self, ridx2_path, capsys):
        term = self.term(ridx2_path)
        assert main(["search", ridx2_path, term]) == 0
        in_memory = capsys.readouterr().out
        assert main(["search", ridx2_path, term, "--ondisk"]) == 0
        out, err = capsys.readouterr()
        assert out == in_memory
        assert "blocks" in err

    def test_bm25_prints_scores(self, ridx2_path, capsys):
        term = self.term(ridx2_path)
        assert main(["search", ridx2_path, term, "--ondisk",
                     "--rank", "bm25", "--topk", "3"]) == 0
        out, _ = capsys.readouterr()
        lines = [line for line in out.splitlines() if line.strip()]
        assert 0 < len(lines) <= 3
        for line in lines:
            float(line.split()[0])  # leading score column

    def test_ondisk_rejects_non_ridx2(self, corpus_dir, tmp_path, capsys):
        save = str(tmp_path / "plain.ridx")
        assert main(["index", corpus_dir, "--sequential",
                     "--save", save]) == 0
        capsys.readouterr()
        assert main(["search", save, "anything", "--ondisk"]) == 2
        assert "RIDX2" in capsys.readouterr().err

    def test_in_memory_bm25_needs_frequency_source(
        self, ridx2_path, capsys
    ):
        assert main(["search", ridx2_path, "anything",
                     "--rank", "bm25"]) == 2
        assert "frequencies" in capsys.readouterr().err

    def test_in_memory_bm25_with_corpus(self, corpus_dir, ridx2_path,
                                        capsys):
        term = self.term(ridx2_path)
        assert main(["search", ridx2_path, term, "--rank", "bm25",
                     "--ranked", corpus_dir, "--topk", "3"]) == 0
        ondisk = capsys.readouterr()
        assert main(["search", ridx2_path, term, "--ondisk",
                     "--rank", "bm25", "--topk", "3"]) == 0
        # Same hits, same scores, either path.
        assert capsys.readouterr().out == ondisk.out

    def test_topk_must_be_positive(self, ridx2_path, capsys):
        assert main(["search", ridx2_path, "x", "--topk", "0"]) == 2
        assert "topk" in capsys.readouterr().err


class TestServeOndisk:
    def test_serves_query_file(self, corpus_dir, ridx2_path, tmp_path,
                               capsys):
        from repro.index import MmapPostingsReader

        with MmapPostingsReader(ridx2_path) as reader:
            term = next(reader.terms())
        queries = tmp_path / "queries.txt"
        queries.write_text(f"# comment\n{term}\nNOT {term}\n")
        assert main(["serve", corpus_dir, "--index", ridx2_path,
                     "--ondisk", "--queries", str(queries)]) == 0
        out, err = capsys.readouterr()
        assert "[gen 0]" in out
        assert "served 2 query(ies)" in err
        assert "blocks" in err

    def test_serves_bm25(self, corpus_dir, ridx2_path, tmp_path, capsys):
        from repro.index import MmapPostingsReader

        with MmapPostingsReader(ridx2_path) as reader:
            term = next(reader.terms())
        queries = tmp_path / "queries.txt"
        queries.write_text(term + "\n")
        assert main(["serve", corpus_dir, "--index", ridx2_path,
                     "--ondisk", "--rank", "bm25", "--topk", "2",
                     "--queries", str(queries)]) == 0
        out, _ = capsys.readouterr()
        scored = [l for l in out.splitlines() if l.startswith("  ")]
        assert 0 < len(scored) <= 2

    def test_ondisk_needs_index(self, corpus_dir, capsys):
        assert main(["serve", corpus_dir, "--ondisk"]) == 2
        assert "--index" in capsys.readouterr().err

    def test_ondisk_rejects_watch(self, corpus_dir, ridx2_path, capsys):
        assert main(["serve", corpus_dir, "--index", ridx2_path,
                     "--ondisk", "--watch", "1"]) == 2
        assert "immutable" in capsys.readouterr().err

    def test_bm25_needs_ondisk(self, corpus_dir, capsys):
        assert main(["serve", corpus_dir, "--rank", "bm25"]) == 2
        assert "--ondisk" in capsys.readouterr().err
