"""Tests for the filesystem substrate (nodes, VFS, traversal, stats)."""

import pytest

from repro.fsmodel import (
    CorpusStats,
    FileRef,
    VirtualDirectory,
    VirtualFile,
    VirtualFileSystem,
    collect_stats,
    walk_breadth_first,
    walk_depth_first,
)
from repro.fsmodel.stats import largest_files
from repro.fsmodel.traversal import count_nodes


class TestFileRef:
    def test_carries_path_and_size(self):
        ref = FileRef("a/b.txt", 42)
        assert ref.path == "a/b.txt" and ref.size == 42

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileRef("x", -1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FileRef("x", 1).size = 2

    def test_equality(self):
        assert FileRef("x", 1) == FileRef("x", 1)


class TestNodes:
    def test_file_size(self):
        assert VirtualFile(b"hello").size == 5

    def test_file_rejects_str(self):
        with pytest.raises(TypeError):
            VirtualFile("text")

    def test_directory_add_and_list(self):
        d = VirtualDirectory()
        d.add_file("a.txt", b"x")
        d.add_directory("sub")
        assert list(d.files()) == ["a.txt"]
        assert list(d.directories()) == ["sub"]

    def test_duplicate_name_rejected(self):
        d = VirtualDirectory()
        d.add_file("a", b"")
        with pytest.raises(FileExistsError):
            d.add_directory("a")

    def test_invalid_names_rejected(self):
        d = VirtualDirectory()
        with pytest.raises(ValueError):
            d.add_file("", b"")
        with pytest.raises(ValueError):
            d.add_file("a/b", b"")


class TestVirtualFileSystem:
    @pytest.fixture
    def fs(self):
        fs = VirtualFileSystem()
        fs.mkdir("docs")
        fs.mkdir("docs/work")
        fs.write_file("docs/a.txt", b"alpha")
        fs.write_file("docs/work/b.txt", b"beta content")
        fs.write_file("top.txt", b"t")
        return fs

    def test_read_file(self, fs):
        assert fs.read_file("docs/a.txt") == b"alpha"

    def test_file_size(self, fs):
        assert fs.file_size("docs/work/b.txt") == 12

    def test_exists(self, fs):
        assert fs.exists("docs")
        assert fs.exists("docs/a.txt")
        assert not fs.exists("nope")

    def test_is_dir(self, fs):
        assert fs.is_dir("docs")
        assert not fs.is_dir("docs/a.txt")
        assert not fs.is_dir("missing")

    def test_listdir(self, fs):
        assert set(fs.listdir("docs")) == {"work", "a.txt"}
        assert "top.txt" in fs.listdir()

    def test_list_files_returns_all(self, fs):
        paths = {ref.path for ref in fs.list_files()}
        assert paths == {"docs/a.txt", "docs/work/b.txt", "top.txt"}

    def test_list_files_sizes(self, fs):
        sizes = {ref.path: ref.size for ref in fs.list_files()}
        assert sizes["docs/a.txt"] == 5

    def test_list_files_subtree(self, fs):
        paths = {ref.path for ref in fs.list_files("docs")}
        assert paths == {"docs/a.txt", "docs/work/b.txt"}

    def test_mkdir_requires_parent(self):
        fs = VirtualFileSystem()
        with pytest.raises(FileNotFoundError):
            fs.mkdir("a/b")

    def test_mkdir_parents(self):
        fs = VirtualFileSystem()
        fs.mkdir("a/b/c", parents=True)
        assert fs.is_dir("a/b/c")

    def test_write_duplicate_rejected(self, fs):
        with pytest.raises(FileExistsError):
            fs.write_file("top.txt", b"again")

    def test_read_directory_rejected(self, fs):
        with pytest.raises(IsADirectoryError):
            fs.read_file("docs")

    def test_read_missing_rejected(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_file("ghost.txt")

    def test_dotdot_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.read_file("docs/../top.txt")

    def test_deterministic_order(self, fs):
        first = [ref.path for ref in fs.list_files()]
        second = [ref.path for ref in fs.list_files()]
        assert first == second


class TestTraversal:
    @pytest.fixture
    def tree(self):
        root = VirtualDirectory()
        root.add_file("r.txt", b"1")
        a = root.add_directory("a")
        a.add_file("a1.txt", b"22")
        b = a.add_directory("b")
        b.add_file("b1.txt", b"333")
        return root

    def test_dfs_visits_all(self, tree):
        paths = [p for p, _ in walk_depth_first(tree)]
        assert set(paths) == {"r.txt", "a/a1.txt", "a/b/b1.txt"}

    def test_bfs_visits_all(self, tree):
        paths = [p for p, _ in walk_breadth_first(tree)]
        assert set(paths) == {"r.txt", "a/a1.txt", "a/b/b1.txt"}

    def test_bfs_level_order(self, tree):
        paths = [p for p, _ in walk_breadth_first(tree)]
        assert paths.index("r.txt") < paths.index("a/a1.txt")
        assert paths.index("a/a1.txt") < paths.index("a/b/b1.txt")

    def test_prefix(self, tree):
        paths = [p for p, _ in walk_depth_first(tree, prefix="root")]
        assert all(p.startswith("root/") for p in paths)

    def test_count_nodes(self, tree):
        directories, files = count_nodes(tree)
        assert directories == 3  # root, a, b
        assert files == 3


class TestStats:
    def test_collect(self):
        refs = [FileRef("a", 10), FileRef("b", 30), FileRef("c", 20)]
        stats = collect_stats(refs)
        assert stats.file_count == 3
        assert stats.total_bytes == 60
        assert stats.min_size == 10
        assert stats.max_size == 30
        assert stats.mean_size == 20.0

    def test_empty(self):
        stats = collect_stats([])
        assert stats.file_count == 0
        assert stats.mean_size == 0.0

    def test_megabytes(self):
        stats = CorpusStats(1, 869_000_000, 1, 1)
        assert stats.total_megabytes == 869.0

    def test_largest_files(self):
        refs = [FileRef("a", 10), FileRef("b", 30), FileRef("c", 20)]
        top2 = largest_files(refs, 2)
        assert [r.path for r in top2] == ["b", "c"]

    def test_largest_ties_broken_by_path(self):
        refs = [FileRef("z", 10), FileRef("a", 10)]
        assert [r.path for r in largest_files(refs, 2)] == ["a", "z"]


class TestOsFileSystem:
    def test_round_trip(self, tmp_path):
        from repro.fsmodel import OsFileSystem

        fs = OsFileSystem(str(tmp_path))
        fs.mkdir("sub")
        fs.write_file("sub/f.txt", b"content")
        assert fs.read_file("sub/f.txt") == b"content"
        assert fs.file_size("sub/f.txt") == 7
        assert fs.exists("sub/f.txt")
        assert fs.is_dir("sub")
        refs = list(fs.list_files())
        assert [r.path for r in refs] == ["sub/f.txt"]
        assert refs[0].size == 7

    def test_escape_rejected(self, tmp_path):
        from repro.fsmodel import OsFileSystem

        fs = OsFileSystem(str(tmp_path))
        with pytest.raises(ValueError):
            fs.read_file("../outside.txt")

    def test_missing_root_rejected(self, tmp_path):
        from repro.fsmodel import OsFileSystem

        with pytest.raises(NotADirectoryError):
            OsFileSystem(str(tmp_path / "ghost"))

    def test_duplicate_write_rejected(self, tmp_path):
        from repro.fsmodel import OsFileSystem

        fs = OsFileSystem(str(tmp_path))
        fs.write_file("f", b"1")
        with pytest.raises(FileExistsError):
            fs.write_file("f", b"2")

    def test_sorted_deterministic_order(self, tmp_path):
        from repro.fsmodel import OsFileSystem

        fs = OsFileSystem(str(tmp_path))
        for name in ("c.txt", "a.txt", "b.txt"):
            fs.write_file(name, b"x")
        assert [r.path for r in fs.list_files()] == ["a.txt", "b.txt", "c.txt"]
