"""The extraction pipeline: fast tokenizer path, Extractor API,
registry, spec round-trips, and the deprecation shims.

The two load-bearing suites:

* the hypothesis differential — the vectorized ``Tokenizer.tokenize``
  must be bit-for-bit the per-byte reference loop
  (``iter_terms_slow``), for arbitrary byte strings and length/stopword
  settings;
* merge equivalence per extractor — every backend (sequential,
  threaded, process) must produce byte-identical RIDX1 output for each
  registered extractor, so extractors slot into any engine without
  changing what gets indexed.
"""

from __future__ import annotations

import pickle
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    IndexGenerator,
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    SequentialIndexer,
    ThreadConfig,
)
from repro.engine.procworker import TokenizerSpec
from repro.extract import (
    AsciiExtractor,
    CodeExtractor,
    CodeTokenizer,
    Extractor,
    ExtractorSpec,
    TsvExtractor,
    available_extractors,
    get_extractor,
    resolve_extractor,
)
from repro.formats import default_registry
from repro.fsmodel import VirtualFileSystem
from repro.index.binfmt import dump_index_bytes
from repro.text.tokenizer import (
    SEPARATOR_BYTES,
    Tokenizer,
    make_translation_table,
)


# -- the fast tokenizer path -------------------------------------------


class TestTranslationTable:
    def test_separators_map_to_delimiter(self):
        table = make_translation_table()
        for byte in SEPARATOR_BYTES:
            assert table[byte] == ord(" ")

    def test_case_folds_in_the_same_pass(self):
        table = make_translation_table()
        assert bytes([table[ord("A")]]) == b"a"
        assert bytes([table[ord("z")]]) == b"z"
        assert bytes([table[ord("7")]]) == b"7"

    def test_fold_case_off_preserves_case(self):
        table = make_translation_table(fold_case=False)
        assert bytes([table[ord("A")]]) == b"A"


class TestFastPathEquivalence:
    @pytest.mark.parametrize(
        "content",
        [
            b"",
            b"cat dog CAT-dog",
            b"a" * 200,
            bytes(range(256)) * 3,
            b"tab\tsep\nlines\r\nand2digits99",
        ],
    )
    def test_tokenize_equals_slow_loop(self, content):
        tok = Tokenizer()
        assert tok.tokenize(content) == list(tok.iter_terms_slow(content))

    @settings(max_examples=200, deadline=None)
    @given(
        content=st.binary(max_size=400),
        min_length=st.integers(min_value=1, max_value=4),
        max_length=st.integers(min_value=4, max_value=24),
    )
    def test_differential_property(self, content, min_length, max_length):
        tok = Tokenizer(min_length=min_length, max_length=max_length)
        assert tok.tokenize(content) == list(tok.iter_terms_slow(content))

    @settings(max_examples=100, deadline=None)
    @given(content=st.binary(max_size=300))
    def test_differential_with_stopwords(self, content):
        tok = Tokenizer(stopwords={"the", "and", "aa"})
        assert tok.tokenize(content) == list(tok.iter_terms_slow(content))

    @settings(max_examples=100, deadline=None)
    @given(content=st.binary(max_size=300))
    def test_code_tokenizer_differential(self, content):
        tok = CodeTokenizer()
        assert tok.tokenize(content) == list(tok.iter_terms_slow(content))

    @settings(max_examples=100, deadline=None)
    @given(content=st.binary(max_size=300))
    def test_count_terms_matches_tokenize(self, content):
        tok = Tokenizer()
        assert tok.count_terms(content) == len(tok.tokenize(content))

    def test_iter_terms_still_streams(self):
        terms = Tokenizer().iter_terms(b"cat dog")
        assert next(terms) == "cat"
        assert list(terms) == ["dog"]


class TestMaxLengthAliasing:
    def test_truncation_aliases_shared_prefixes(self):
        # Documented (and deliberate): truncation is a projection, so
        # two distinct over-long runs with a common 64-byte prefix
        # collapse to the same term.  Pinned here so the fast path can
        # never silently change the behaviour.
        tok = Tokenizer()
        assert tok.tokenize(b"x" * 65) == ["x" * 64]
        assert tok.tokenize(b"x" * 64 + b"y") == ["x" * 64]
        assert tok.tokenize(b"x" * 65) == tok.tokenize(b"x" * 64 + b"y")

    def test_truncated_before_stopword_check(self):
        # The *truncated* term is what faces the stopword set, exactly
        # as the per-byte loop always did.
        tok = Tokenizer(max_length=3, stopwords={"cat"})
        assert tok.tokenize(b"cats") == []


# -- the code tokenizer ------------------------------------------------


class TestCodeTokenizer:
    def test_camel_case_splits(self):
        assert CodeTokenizer().tokenize(b"parseHTTPHeader") == [
            "parse", "http", "header", "parsehttpheader",
        ]

    def test_snake_case_keeps_identifier(self):
        assert CodeTokenizer().tokenize(b"snake_case") == [
            "snake", "case", "snakecase",
        ]

    def test_digits_are_parts(self):
        assert CodeTokenizer().tokenize(b"sha256sum") == [
            "sha", "256", "sum", "sha256sum",
        ]

    def test_single_part_not_doubled(self):
        assert CodeTokenizer().tokenize(b"word other") == ["word", "other"]

    def test_min_length_applies_to_parts_and_identifier(self):
        # "a" and "b" fall below min_length; the joined "a_b" -> "ab"
        # survives.
        assert CodeTokenizer().tokenize(b"a_b") == ["ab"]

    def test_plain_text_matches_ascii_terms(self):
        content = b"The quick brown fox, 42 times."
        assert CodeTokenizer().tokenize(content) == Tokenizer().tokenize(
            content
        )


# -- the TSV extractor -------------------------------------------------


class TestTsvExtractor:
    RECORDS = b"1\thello world\tspam\n2\tbye now\theggs\n"

    def test_column_selection(self):
        ex = TsvExtractor(columns=(1,))
        assert ex.terms("data.tsv", self.RECORDS) == [
            "hello", "world", "bye", "now",
        ]

    def test_all_columns_by_default(self):
        ex = TsvExtractor()
        assert "spam" in ex.terms("data.tsv", self.RECORDS)

    def test_missing_columns_ignored(self):
        ex = TsvExtractor(columns=(5,))
        assert ex.terms("data.tsv", self.RECORDS) == []

    def test_negative_column_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TsvExtractor(columns=(-1,))

    def test_boundary_is_newline_only(self):
        assert TsvExtractor().boundary_bytes == frozenset((0x0A,))

    def test_always_splittable(self):
        assert TsvExtractor().splittable("anything.bin", b"\x00\x01")

    def test_registry_is_refused(self):
        # The tab structure IS the format; a format conversion would
        # destroy it.
        ex = TsvExtractor(registry=default_registry())
        assert ex.registry is None


# -- the Extractor API and registry ------------------------------------


class TestExtractorApi:
    def test_prepare_is_identity_without_registry(self):
        assert AsciiExtractor().prepare("a.html", b"<b>hi</b>") == b"<b>hi</b>"

    def test_prepare_converts_with_registry(self):
        ex = AsciiExtractor(registry=default_registry())
        assert b"<b>" not in ex.prepare("a.html", b"<html><b>hi</b></html>")

    def test_term_block_dedups(self):
        block = AsciiExtractor().term_block("a.txt", b"cat cat dog")
        assert block.path == "a.txt"
        assert sorted(block.terms) == ["cat", "dog"]

    def test_boundary_bytes_complement_word_bytes(self):
        ex = AsciiExtractor()
        assert ord(" ") in ex.boundary_bytes
        assert ord("a") not in ex.boundary_bytes

    def test_splittable_gated_on_plain_text(self):
        ex = AsciiExtractor(registry=default_registry())
        assert ex.splittable("notes.txt", b"hello")
        assert not ex.splittable("page.html", b"<html><body>")

    def test_registry_lists_builtin_names(self):
        assert set(available_extractors()) >= {"ascii", "code", "tsv"}

    def test_get_extractor_by_name(self):
        assert isinstance(get_extractor("code"), CodeExtractor)
        assert isinstance(get_extractor("code").tokenizer, CodeTokenizer)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="ascii"):
            get_extractor("nope")

    def test_resolve_defaults_to_ascii(self):
        ex = resolve_extractor(None, None, None)
        assert isinstance(ex, AsciiExtractor)

    def test_resolve_passes_instances_through(self):
        ex = CodeExtractor()
        assert resolve_extractor(ex) is ex

    def test_resolve_rejects_both_spellings(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_extractor(CodeExtractor(), tokenizer=Tokenizer())

    def test_resolve_rejects_bad_type(self):
        with pytest.raises(TypeError):
            resolve_extractor(42)


EXTRACTORS = {
    "ascii": lambda: AsciiExtractor(
        tokenizer=Tokenizer(min_length=3, stopwords={"the"})
    ),
    "ascii+formats": lambda: AsciiExtractor(registry=default_registry()),
    "code": lambda: CodeExtractor(),
    "tsv": lambda: TsvExtractor(columns=(0, 1)),
}


class TestExtractorSpec:
    @pytest.mark.parametrize("name", sorted(EXTRACTORS))
    def test_pickle_round_trip(self, name):
        import dataclasses

        spec = EXTRACTORS[name]().spec()
        clone = pickle.loads(pickle.dumps(spec))
        # The registry pickles by value and has no __eq__; compare the
        # plain-data fields structurally and the registry behaviourally.
        assert dataclasses.replace(clone, registry=None) == (
            dataclasses.replace(spec, registry=None)
        )
        rebuilt = clone.build()
        content = b"The HTTPServer parse_header\t42 cats\n"
        assert rebuilt.terms("x.txt", content) == EXTRACTORS[name]().terms(
            "x.txt", content
        )

    def test_build_restores_class_and_options(self):
        ex = TsvExtractor(columns=(2,))
        rebuilt = ex.spec().build()
        assert isinstance(rebuilt, TsvExtractor)
        assert rebuilt.columns == (2,)

    def test_spec_validates_lengths(self):
        with pytest.raises(ValueError):
            ExtractorSpec(min_length=0)
        with pytest.raises(ValueError):
            ExtractorSpec(min_length=5, max_length=2)

    def test_tokenizer_spec_shim_converts(self):
        with pytest.warns(DeprecationWarning):
            legacy = TokenizerSpec.from_tokenizer(Tokenizer(min_length=3))
        spec = legacy.to_extractor_spec()
        assert spec.kind == "ascii"
        assert spec.min_length == 3


# -- merge equivalence: extractor x backend ----------------------------


@pytest.fixture(scope="module")
def mixed_fs():
    fs = VirtualFileSystem()
    for directory in ("notes", "src", "data"):
        fs.mkdir(directory)
    fs.write_file("notes/a.txt", b"The cat sat on the mat. CamelCase!")
    fs.write_file("notes/b.txt", b"dog DOG d0g underscore_name " * 20)
    fs.write_file("src/main.py", b"def parseHTTPHeader(raw_bytes): pass\n" * 9)
    fs.write_file("data/rows.tsv", b"1\thello world\tspam\n2\tbye now\teggs\n")
    fs.write_file("data/big.txt", b"alpha beta gamma delta " * 300)
    return fs


def build_index_bytes(backend, fs, extractor):
    if backend == "sequential":
        report = SequentialIndexer(
            fs, naive=False, extractor=extractor
        ).build()
    elif backend == "thread":
        report = ReplicatedJoinedIndexer(fs, extractor=extractor).build(
            ThreadConfig(2, 0, 1)
        )
    else:
        report = ProcessReplicatedIndexer(
            fs, extractor=extractor, oversubscribe=True
        ).build(ThreadConfig(2, 0, 1, backend="process"))
    return dump_index_bytes(report.index)


class TestMergeEquivalencePerExtractor:
    @pytest.mark.parametrize("name", sorted(EXTRACTORS))
    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_backends_match_sequential_byte_for_byte(
        self, mixed_fs, name, backend
    ):
        make = EXTRACTORS[name]
        reference = build_index_bytes("sequential", mixed_fs, make())
        assert build_index_bytes(backend, mixed_fs, make()) == reference

    def test_named_extractor_equals_instance(self, mixed_fs):
        by_name = SequentialIndexer(
            mixed_fs, naive=False, extractor="code"
        ).build()
        by_instance = SequentialIndexer(
            mixed_fs, naive=False, extractor=CodeExtractor()
        ).build()
        assert dump_index_bytes(by_name.index) == dump_index_bytes(
            by_instance.index
        )


# -- deprecation shims -------------------------------------------------


class TestDeprecatedKwargs:
    def test_engine_constructors_warn(self, tiny_fs):
        for make in (
            lambda: SequentialIndexer(tiny_fs, tokenizer=Tokenizer()),
            lambda: IndexGenerator(tiny_fs, registry=default_registry()),
            lambda: ReplicatedJoinedIndexer(tiny_fs, tokenizer=Tokenizer()),
            lambda: ProcessReplicatedIndexer(tiny_fs, tokenizer=Tokenizer()),
        ):
            with pytest.warns(DeprecationWarning, match="extractor="):
                make()

    def test_legacy_kwargs_fold_into_extractor(self, tiny_fs):
        tok = Tokenizer(min_length=3)
        reg = default_registry()
        with pytest.warns(DeprecationWarning):
            engine = SequentialIndexer(tiny_fs, tokenizer=tok, registry=reg)
        assert isinstance(engine.extractor, AsciiExtractor)
        # The aliases stay readable for old call sites.
        assert engine.tokenizer is tok
        assert engine.registry is reg

    def test_extractor_kwarg_is_silent(self, tiny_fs):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SequentialIndexer(tiny_fs, extractor=AsciiExtractor())
            IndexGenerator(tiny_fs, extractor="code")

    def test_legacy_build_output_unchanged(self, tiny_fs):
        with pytest.warns(DeprecationWarning):
            legacy = SequentialIndexer(
                tiny_fs, naive=False, tokenizer=Tokenizer()
            ).build()
        modern = SequentialIndexer(
            tiny_fs, naive=False, extractor=AsciiExtractor()
        ).build()
        assert dump_index_bytes(legacy.index) == dump_index_bytes(
            modern.index
        )


class TestSearchExtractorSurface:
    def test_search_accepts_extractor_without_warning(self, tmp_path):
        (tmp_path / "a.txt").write_bytes(b"fooBar baz_qux")
        from repro import Search

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = Search.build(str(tmp_path), extractor="code")
        assert session.query("foobar").paths == ["a.txt"]
        assert session.query("baz").paths == ["a.txt"]

    def test_search_legacy_kwargs_do_not_warn(self, tmp_path):
        (tmp_path / "a.txt").write_bytes(b"cat")
        from repro import Search

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = Search.build(str(tmp_path), tokenizer=Tokenizer(1))
        assert session.query("cat").paths == ["a.txt"]

    def test_refresh_uses_session_extractor(self, tmp_path):
        (tmp_path / "a.py").write_bytes(b"def startHere(): pass")
        from repro import Search

        session = Search.build(str(tmp_path), extractor="code")
        (tmp_path / "b.py").write_bytes(b"def stopThere(): pass")
        change = session.refresh()
        assert change.added == ["b.py"]
        assert session.query("stopthere").paths == ["b.py"]


class TestCliExtractorFlags:
    def test_extractor_and_split_threshold(self, tmp_path, capsys):
        from repro.cli import main
        from repro.index import load_index

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "big.py").write_bytes(b"def parseHTTPHeader(): pass\n" * 40)
        (corpus / "small.txt").write_bytes(b"plain words here")
        save = str(tmp_path / "code.ridx")
        assert main(["index", str(corpus), "-i", "1", "-x", "2", "-y", "1",
                     "--extractor", "code", "--split-threshold", "256",
                     "--save", save]) == 0
        index = load_index(save)
        assert "parsehttpheader" in set(index.terms())

    def test_split_threshold_rejected_with_sequential(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "a.txt").write_bytes(b"cat")
        assert main(["index", str(corpus), "--sequential",
                     "--split-threshold", "100"]) == 2
        assert "--split-threshold" in capsys.readouterr().err
