"""Interleaving-level guarantees of the async query front end.

Mirrors ``test_service_concurrency.py`` one layer up.  The claims
under test: the coalescing map and batch queue are race-free, a
snapshot swap during an in-flight batch never tears a result, and
``close()`` under load resolves every accepted ticket deterministically
— completed, or :class:`ServiceOverloadedError` — never a hang.

Four layers of evidence:

1. a deterministic schedule sweep — the frontend takes every lock,
   condition and thread from an
   :class:`~repro.schedcheck.sync.InstrumentedSyncProvider`; submitters
   race a publisher across random-walk and PCT schedules and (a) every
   result matches exactly one generation and (b) the race detector
   finds nothing on the frontend's seams;
2. a record-mode run proving those seams (``frontend.inflight-map``,
   ``frontend.batch-queue``, ``service.snapshot``) actually reach the
   tracer — the sweep's silence is informed silence;
3. a mutation run with the snapshot lock broken that *does* race on
   the swap seam the batcher's one-pointer-load-per-batch depends on.
   (The frontend's own state lock cannot be no-op'd this way: its four
   conditions are built on it, and a condition over a no-op lock is
   structurally invalid rather than racy);
4. drain-correctness sweeps — ``close(drain=True/False)`` races the
   submitters under the deterministic scheduler (no sleeps): queued,
   coalesced-waiter and mid-batch tickets all resolve, with exactly
   the contract's outcome split.

A real-thread stress run closes the loop at OS speed.
"""

from __future__ import annotations

import threading

import pytest

from repro.index.inverted import InvertedIndex
from repro.schedcheck import (
    CooperativeScheduler,
    InstrumentedSyncProvider,
    Tracer,
    UnlockedSyncProvider,
    find_races,
    make_strategy,
)
from repro.service import (
    AsyncSearchFrontend,
    IndexSnapshot,
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.text.termblock import TermBlock


def index_for(generation: int) -> InvertedIndex:
    index = InvertedIndex()
    index.add_block(
        TermBlock(f"gen{generation}.txt", ("probe", f"g{generation}"))
    )
    return index


#: what a query against generation g must return — and nothing else.
EXPECTED = {g: [f"gen{g}.txt"] for g in range(8)}


def make_stack(provider, max_inflight: int = 8):
    service = SearchService(
        IndexSnapshot(index_for(0)),
        workers=1,
        max_inflight=max_inflight,
        sync=provider,
    )
    frontend = AsyncSearchFrontend(
        service,
        batch_window=0.0,
        workers=1,
        stage_workers=1,
        max_inflight=max_inflight,
        own_service=True,
        sync=provider,
    )
    return frontend, service


def frontend_scenario(provider):
    """Duplicate submitters race a publisher swapping generations.

    Every result must pair one published generation with exactly that
    generation's paths — a batch that pinned a half-swapped snapshot,
    or a follower handed a result from a different key, fails here.
    """
    frontend, service = make_stack(provider)
    outcomes = []

    def submitter() -> None:
        tickets = [frontend.submit("probe") for _ in range(2)]
        outcomes.extend(ticket.result() for ticket in tickets)

    def publisher() -> None:
        for generation in (1, 2):
            service.publish(index_for(generation))

    threads = [
        provider.thread(submitter, name="submit-a"),
        provider.thread(submitter, name="submit-b"),
        provider.thread(publisher, name="publisher"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    frontend.close()

    assert len(outcomes) == 4
    for result in outcomes:
        assert result.paths == EXPECTED[result.generation]
    stats = frontend.stats()
    assert stats["frontend.served"] == 4
    assert stats["frontend.evaluations"] + stats["frontend.coalesced"] == 4
    return frontend


def drain_scenario(provider, drain: bool):
    """``close(drain=...)`` races two submitters mid-burst.

    The contract: every *accepted* ticket resolves — with a result
    when draining (nothing was over budget here), with a result or
    ``ServiceOverloadedError`` when not draining — and every rejected
    submit raised ``ServiceClosedError``.  No third outcome, no hang.
    """
    frontend, _service = make_stack(provider)
    accepted = []
    closed_out = []

    def submitter(texts) -> None:
        for text in texts:
            try:
                accepted.append(frontend.submit(text))
            except ServiceClosedError:
                closed_out.append(text)

    threads = [
        # Same answer at every generation, three distinct cache keys —
        # so schedules produce queued, coalesced and mid-batch tickets.
        provider.thread(
            submitter,
            args=(("probe", "probe", "probe AND probe"),),
            name="submit-a",
        ),
        provider.thread(
            submitter,
            args=(("probe", "probe OR probe", "probe AND probe"),),
            name="submit-b",
        ),
    ]
    for thread in threads:
        thread.start()
    # Deliberately NOT joined first: close lands somewhere inside the
    # bursts, catching tickets queued, coalesced and mid-batch.
    frontend.close(drain=drain)
    for thread in threads:
        thread.join()

    assert len(accepted) + len(closed_out) == 6
    for ticket in accepted:
        assert ticket.done  # close() resolved everything it accepted
        if ticket.error is not None:
            assert isinstance(ticket.error, ServiceOverloadedError)
            assert not drain  # draining close never sheds
        else:
            assert ticket.value.paths == EXPECTED[ticket.value.generation]
    stats = frontend.stats()
    assert stats["frontend.served"] == len(accepted)
    completed = sum(1 for t in accepted if t.error is None)
    assert completed + stats["frontend.shed"] == len(accepted)
    return frontend


class TestScheduleSweep:
    @pytest.mark.parametrize("strategy", ("random", "pct"))
    @pytest.mark.parametrize("seed", range(4))
    def test_no_torn_results_and_no_races(self, strategy, seed):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy(strategy, seed))
        provider = InstrumentedSyncProvider(tracer=tracer,
                                            scheduler=scheduler)
        provider.run(lambda: frontend_scenario(provider))
        assert find_races(tracer) == []

    def test_record_mode_sees_the_frontend_seams(self):
        tracer = Tracer()
        provider = InstrumentedSyncProvider(tracer=tracer)
        provider.run(lambda: frontend_scenario(provider))
        locations = {access.location for access in tracer.accesses}
        assert "frontend.inflight-map" in locations
        assert "frontend.batch-queue" in locations
        assert "service.snapshot" in locations
        map_writes = [
            a for a in tracer.accesses
            if a.location == "frontend.inflight-map" and a.write
        ]
        assert map_writes  # registrations and removals reach the tracer

    def test_broken_snapshot_lock_is_caught(self):
        # Mutation self-test: strip the lock under the one-pointer-load
        # seam the batcher depends on; the detector must report a race
        # there in at least one schedule (or the oracle must trip).
        for seed in range(8):
            tracer = Tracer()
            scheduler = CooperativeScheduler(make_strategy("random", seed))
            provider = UnlockedSyncProvider(
                tracer=tracer,
                scheduler=scheduler,
                break_locks=("service.snapshot-lock",),
            )
            try:
                provider.run(lambda: frontend_scenario(provider))
            except AssertionError:
                return  # a genuinely torn result surfacing also counts
            races = find_races(tracer)
            if any("service.snapshot" in race.location for race in races):
                return
        pytest.fail("no schedule exposed the broken snapshot lock")


class TestDrainCorrectness:
    @pytest.mark.parametrize("strategy", ("random", "pct"))
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("drain", (True, False))
    def test_close_under_load_resolves_every_ticket(
        self, strategy, seed, drain
    ):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy(strategy, seed))
        provider = InstrumentedSyncProvider(tracer=tracer,
                                            scheduler=scheduler)
        provider.run(lambda: drain_scenario(provider, drain))
        assert find_races(tracer) == []


class TestRealThreadStress:
    SUBMITTERS = 4
    QUERIES = 25
    REFRESHES = 4

    def test_coalescing_under_publishes_at_os_speed(self):
        service = SearchService(
            IndexSnapshot(index_for(0)), workers=1, max_inflight=64
        )
        frontend = AsyncSearchFrontend(
            service, workers=2, max_inflight=64, own_service=True
        )
        start = threading.Barrier(self.SUBMITTERS + 1)
        mismatches = []
        errors = []

        def submitter() -> None:
            start.wait()
            try:
                for _ in range(self.QUERIES):
                    result = frontend.query("probe")
                    if result.paths != EXPECTED[result.generation]:
                        mismatches.append(result)
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        def publisher() -> None:
            start.wait()
            try:
                for generation in range(1, self.REFRESHES + 1):
                    service.publish(index_for(generation))
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        threads = [
            threading.Thread(target=submitter)
            for _ in range(self.SUBMITTERS)
        ]
        threads.append(threading.Thread(target=publisher))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        frontend.close()

        assert errors == []
        assert mismatches == []
        stats = frontend.stats()
        assert stats["frontend.served"] == self.SUBMITTERS * self.QUERIES
        assert stats["frontend.shed"] == 0
