"""Integration tests: engine builds produce coherent span trees,
derived timings, throughput metrics, and valid Chrome traces — for the
sequential, threaded, and process backends, plus the CLI flags.

The process-backend tests run with ``oversubscribe=True`` so they work
on single-CPU CI boxes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import (
    ProcessReplicatedIndexer,
    ReplicatedJoinedIndexer,
    SequentialIndexer,
    ThreadConfig,
)
from repro.engine.results import StageTimings
from repro.obs import (
    Recorder,
    chrome_trace,
    validate_chrome_trace,
    validate_trace_file,
)
from repro.obs import recorder as obsrec


@pytest.fixture
def fresh_obs():
    """A fresh, disabled global recorder; the previous one is restored."""
    previous = obsrec.set_recorder(Recorder(enabled=False))
    try:
        yield obsrec.get_recorder()
    finally:
        obsrec.set_recorder(previous)


def names(spans):
    return [span.name for span in spans]


# -- per-build spans (always on, tracing or not) -----------------------


class TestBuildSpans:
    def test_sequential_report_carries_span_tree(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        assert "build" in names(report.spans)
        assert "phase.stage1" in names(report.spans)
        # one extract + one update span per file
        file_count = report.file_count
        assert names(report.spans).count("phase.extract") == file_count
        assert names(report.spans).count("phase.update") == file_count

    def test_threaded_build_spans_cover_all_stages(self, tiny_fs):
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(3, 2, 1))
        present = set(names(report.spans))
        assert {"build", "phase.stage1", "phase.extract",
                "phase.update", "phase.join"} <= present
        workers = [s for s in report.spans if s.name == "extract.worker"]
        updaters = [s for s in report.spans if s.name == "update.worker"]
        assert sorted(s.attrs["worker"] for s in workers) == [0, 1, 2]
        assert sorted(s.attrs["worker"] for s in updaters) == [0, 1]

    def test_inline_update_marks_extract_phase(self, tiny_fs):
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(2, 0, 1))
        (extract,) = [s for s in report.spans if s.name == "phase.extract"]
        assert extract.attrs.get("inline_update") is True
        assert "phase.update" not in names(report.spans)
        # the historical convention: y=0 reports update == extraction
        assert report.timings.update == report.timings.extraction

    def test_timings_derive_from_spans(self, tiny_fs):
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(3, 2, 1))
        derived = StageTimings.from_spans(report.spans)
        assert derived == report.timings
        assert derived.filename_generation > 0
        assert derived.extraction > 0
        assert derived.join > 0

    def test_span_tree_nests_under_build_root(self, tiny_fs):
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(2, 2, 1))
        (root,) = [s for s in report.spans if s.name == "build"]
        assert root.parent_id is None
        by_id = {s.span_id: s for s in report.spans}
        for span in report.spans:
            # parent links resolve and chains terminate without cycles;
            # spans opened on worker threads start their own chains
            # (nesting is per-thread), so a None parent is fine.
            seen = set()
            cursor = span
            while cursor.parent_id is not None:
                assert cursor.span_id not in seen
                seen.add(cursor.span_id)
                cursor = by_id[cursor.parent_id]
        # the phase spans all sit somewhere under the build root
        # (phase.extract nests inside phase.update on the buffered path)
        for span in report.spans:
            if span.name.startswith("phase."):
                cursor = span
                while cursor.parent_id is not None:
                    cursor = by_id[cursor.parent_id]
                assert cursor is root

    def test_no_detail_spans_while_disabled(self, tiny_fs, fresh_obs):
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(2, 2, 1))
        assert "extract.file" not in names(report.spans)
        assert obsrec.get_recorder().spans == []
        # stage spans are unconditional — the report still has them
        assert "phase.extract" in names(report.spans)


class TestBuildMetrics:
    def test_report_metrics_throughput_keys(self, tiny_fs):
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(2, 2, 1))
        metrics = report.metrics
        assert metrics["build.files"] == report.file_count
        assert metrics["build.files_per_s"] > 0
        assert metrics["build.bytes_per_s"] > 0
        assert "query.cache.hit_rate" in metrics

    def test_summary_mentions_throughput(self, tiny_fs):
        report = SequentialIndexer(tiny_fs).build()
        assert "files/s" in report.summary()


# -- tracing enabled: detail spans and chrome export -------------------


class TestTracedBuilds:
    def test_threaded_trace_has_per_file_detail(self, tiny_fs, fresh_obs):
        obsrec.enable()
        report = ReplicatedJoinedIndexer(tiny_fs).build(ThreadConfig(3, 2, 1))
        spans = obsrec.get_recorder().spans
        detail = [s for s in spans if s.name == "extract.file"]
        assert len(detail) == report.file_count
        assert all("path" in s.attrs and "size" in s.attrs for s in detail)
        # the build's stage spans were absorbed into the global recorder
        assert "phase.join" in names(spans)
        assert validate_chrome_trace(chrome_trace(spans)) == []

    def test_process_trace_spans_per_worker_process(self, tiny_fs, fresh_obs):
        obsrec.enable()
        indexer = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        spans = obsrec.get_recorder().spans
        workers = [s for s in spans if s.name == "extract.worker"]
        assert sorted(s.attrs["worker"] for s in workers) == [0, 1]
        # worker spans keep the worker process identity (own trace rows)
        parent = os.getpid()
        assert all(s.pid != parent for s in workers)
        detail = [s for s in spans if s.name == "extract.file"]
        assert len(detail) == report.file_count
        # rebased onto the parent timeline: workers start after stage 1
        (stage1,) = [s for s in spans if s.name == "phase.stage1"]
        assert all(s.start >= stage1.start for s in workers)
        assert validate_chrome_trace(chrome_trace(spans)) == []

    def test_process_report_timings_and_stages(self, tiny_fs):
        indexer = ProcessReplicatedIndexer(tiny_fs, oversubscribe=True)
        report = indexer.build(ThreadConfig(2, 0, 1, backend="process"))
        present = set(names(report.spans))
        assert {"build", "phase.stage1", "phase.extract",
                "phase.join"} <= present
        assert "phase.update" not in present
        assert report.timings == StageTimings.from_spans(report.spans)
        assert report.timings.update == 0.0
        assert report.metrics["build.files_per_s"] > 0


# -- CLI flags ---------------------------------------------------------


@pytest.fixture(scope="module")
def cli_corpus(tmp_path_factory):
    from repro.cli import main

    destination = str(tmp_path_factory.mktemp("obs-cli") / "corpus")
    assert main(["generate-corpus", destination, "--scale", "0.001"]) == 0
    return destination


class TestCliObservability:
    def test_trace_out_threaded(self, cli_corpus, tmp_path, capsys,
                                fresh_obs):
        from repro.cli import main

        trace = str(tmp_path / "thread.json")
        assert main(["index", cli_corpus, "-i", "2", "-x", "2", "-y", "2",
                     "-z", "1", "--trace-out", trace, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "trace written to" in captured.err
        assert "stages:" in captured.out
        assert validate_trace_file(trace) == []
        events = json.load(open(trace))["traceEvents"]
        begun = {e["name"] for e in events if e["ph"] == "B"}
        assert {"phase.stage1", "phase.extract", "phase.update",
                "phase.join", "extract.file"} <= begun

    def test_trace_out_process_backend(self, cli_corpus, tmp_path, capsys,
                                       fresh_obs):
        from repro.cli import main

        trace = str(tmp_path / "process.json")
        assert main(["index", cli_corpus, "-i", "2", "-x", "2", "-y", "0",
                     "-z", "1", "--backend", "process", "--oversubscribe",
                     "--trace-out", trace]) == 0
        assert validate_trace_file(trace) == []
        events = json.load(open(trace))["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "B"}
        assert len(pids) >= 2  # parent + at least one worker process

    def test_search_stats(self, cli_corpus, tmp_path, capsys, fresh_obs):
        from repro.cli import main

        save = str(tmp_path / "cli.idx")
        assert main(["index", cli_corpus, "-i", "1", "-x", "2", "-y", "1",
                     "--save", save]) == 0
        capsys.readouterr()
        trace = str(tmp_path / "search.json")
        assert main(["search", save, "the", "--trace-out", trace,
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "metrics:" in captured.out
        assert validate_trace_file(trace) == []
        events = json.load(open(trace))["traceEvents"]
        begun = {e["name"] for e in events if e["ph"] == "B"}
        assert "query.search" in begun

    def test_flags_off_means_no_trace_side_effects(self, cli_corpus,
                                                   capsys, fresh_obs):
        from repro.cli import main

        assert main(["index", cli_corpus, "--sequential"]) == 0
        assert not obsrec.enabled()
        assert obsrec.get_recorder().spans == []
