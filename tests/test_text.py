"""Tests for scanning, tokenization, de-duplication and term blocks."""

import pytest

from repro.text import (
    TermBlock,
    Tokenizer,
    dedup_terms,
    empty_scan,
    extract_term_block,
)


class TestEmptyScan:
    def test_checksum_of_known_bytes(self):
        assert empty_scan(b"\x01\x02\x03") == 6

    def test_empty_content(self):
        assert empty_scan(b"") == 0

    def test_wraps_at_32_bits(self):
        content = b"\xff" * (2**20)
        assert 0 <= empty_scan(content) < 2**32


class TestTokenizer:
    def test_basic_split(self):
        assert Tokenizer().tokenize(b"hello world") == ["hello", "world"]

    def test_lowercases(self):
        assert Tokenizer().tokenize(b"Hello WORLD") == ["hello", "world"]

    def test_digits_are_term_characters(self):
        assert Tokenizer().tokenize(b"abc123 42x") == ["abc123", "42x"]

    def test_punctuation_separates(self):
        assert Tokenizer().tokenize(b"a-b,c.d") == []  # all length 1
        assert Tokenizer(min_length=1).tokenize(b"a-b,c.d") == ["a", "b", "c", "d"]

    def test_min_length_filter(self):
        assert Tokenizer(min_length=3).tokenize(b"ab abc abcd") == ["abc", "abcd"]

    def test_max_length_truncates(self):
        tokens = Tokenizer(max_length=4).tokenize(b"abcdefgh")
        assert tokens == ["abcd"]

    def test_empty_content(self):
        assert Tokenizer().tokenize(b"") == []

    def test_trailing_term_emitted(self):
        assert Tokenizer().tokenize(b"no separator at end") == [
            "no", "separator", "at", "end",
        ]

    def test_newlines_and_tabs_separate(self):
        assert Tokenizer().tokenize(b"one\ntwo\tthree") == ["one", "two", "three"]

    def test_count_terms_matches_tokenize(self):
        content = b"some words repeated words some"
        tokenizer = Tokenizer()
        assert tokenizer.count_terms(content) == len(tokenizer.tokenize(content))

    def test_duplicates_preserved(self):
        assert Tokenizer().tokenize(b"dup dup dup") == ["dup"] * 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)
        with pytest.raises(ValueError):
            Tokenizer(min_length=5, max_length=4)

    def test_iter_terms_lazy(self):
        iterator = Tokenizer().iter_terms(b"a few words here")
        assert next(iterator) == "few"


class TestDedup:
    def test_removes_duplicates_keeps_order(self):
        assert dedup_terms(["b", "a", "b", "c", "a"]) == ("b", "a", "c")

    def test_empty(self):
        assert dedup_terms([]) == ()

    def test_extract_term_block(self):
        block = extract_term_block("f.txt", b"cat dog cat", Tokenizer())
        assert block.path == "f.txt"
        assert set(block.terms) == {"cat", "dog"}
        assert len(block) == 2


class TestTermBlock:
    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TermBlock("f", ("a", "a"))

    def test_empty_block_is_truthy(self):
        # A file with no terms is still a unit of work.
        assert TermBlock("f", ())

    def test_len(self):
        assert len(TermBlock("f", ("a", "b"))) == 2

    def test_frozen(self):
        block = TermBlock("f", ("a",))
        with pytest.raises(AttributeError):
            block.path = "g"
