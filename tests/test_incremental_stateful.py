"""Stateful property testing of incremental index maintenance.

Hypothesis drives a random interleaving of filesystem operations
(create, edit, delete) and indexer refreshes against a live
:class:`~repro.index.incremental.IncrementalIndexer`; after every
refresh, the incremental index must equal a from-scratch rebuild of the
current filesystem state, and every lookup must agree with a naive
reference model.
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.engine import SequentialIndexer
from repro.fsmodel import VirtualFileSystem
from repro.index.incremental import IncrementalIndexer

words = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=6),
    min_size=0,
    max_size=6,
)
names = st.integers(min_value=0, max_value=9).map(lambda i: f"file{i}.txt")


class IncrementalMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.fs = VirtualFileSystem()
        self.indexer = IncrementalIndexer(self.fs)
        self.refreshed = True  # empty snapshot == empty fs

    @rule(name=names, content=words)
    def create_or_edit(self, name, content):
        data = " ".join(content).encode()
        if self.fs.exists(name):
            self.fs.replace_file(name, data)
        else:
            self.fs.write_file(name, data)
        self.refreshed = False

    @rule(name=names)
    def delete(self, name):
        if self.fs.exists(name):
            self.fs.remove_file(name)
            self.refreshed = False

    @rule()
    def refresh(self):
        self.indexer.refresh()
        self.refreshed = True

    @invariant()
    def index_matches_rebuild_after_refresh(self):
        if not self.refreshed:
            return
        rebuilt = SequentialIndexer(self.fs, naive=False).build().index
        assert self.indexer.index.index == rebuilt

    @invariant()
    def document_store_consistent(self):
        if not self.refreshed:
            return
        live = sorted(ref.path for ref in self.fs.list_files())
        assert sorted(self.indexer.index.document_paths()) == live


TestIncrementalStateful = IncrementalMachine.TestCase
TestIncrementalStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
