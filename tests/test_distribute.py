"""Tests for the four work-distribution strategies."""

import pytest

from repro.distribute import (
    RoundRobinStrategy,
    SharedQueueStrategy,
    SizeBalancedStrategy,
    StealingDeque,
    WorkQueue,
    WorkStealingStrategy,
)
from repro.fsmodel import FileRef


def refs(*sizes):
    return [FileRef(f"f{i}", size) for i, size in enumerate(sizes)]


ALL_STRATEGIES = [
    RoundRobinStrategy,
    SizeBalancedStrategy,
    SharedQueueStrategy,
    WorkStealingStrategy,
]


@pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
class TestPartitionInvariants:
    """Every strategy must produce an exact partition of the input."""

    def test_all_files_assigned_once(self, strategy_cls):
        files = refs(*range(1, 40))
        distribution = strategy_cls().distribute(files, 5)
        flat = [ref for a in distribution.assignments for ref in a]
        assert sorted(r.path for r in flat) == sorted(r.path for r in files)

    def test_worker_count(self, strategy_cls):
        distribution = strategy_cls().distribute(refs(1, 2, 3), 7)
        assert distribution.worker_count == 7

    def test_single_worker_gets_everything(self, strategy_cls):
        files = refs(5, 10, 15)
        distribution = strategy_cls().distribute(files, 1)
        assert len(distribution.assignments[0]) == 3

    def test_zero_workers_rejected(self, strategy_cls):
        with pytest.raises(ValueError):
            strategy_cls().distribute(refs(1), 0)

    def test_empty_input(self, strategy_cls):
        distribution = strategy_cls().distribute([], 3)
        assert distribution.file_count == 0


class TestRoundRobin:
    def test_deal_order(self):
        files = refs(10, 20, 30, 40, 50)
        distribution = RoundRobinStrategy().distribute(files, 2)
        assert [r.path for r in distribution.assignments[0]] == ["f0", "f2", "f4"]
        assert [r.path for r in distribution.assignments[1]] == ["f1", "f3"]

    def test_count_balance(self):
        distribution = RoundRobinStrategy().distribute(refs(*[1] * 100), 7)
        counts = [len(a) for a in distribution.assignments]
        assert max(counts) - min(counts) <= 1


class TestSizeBalanced:
    def test_beats_round_robin_on_skewed_sizes(self):
        # One huge file plus many small ones: LPT must spread better.
        files = refs(1000, *[10] * 20)
        lpt = SizeBalancedStrategy().distribute(files, 3)
        rr = RoundRobinStrategy().distribute(files, 3)
        assert lpt.imbalance() <= rr.imbalance()

    def test_big_file_isolated(self):
        files = refs(1000, 10, 10, 10)
        distribution = SizeBalancedStrategy().distribute(files, 2)
        loads = distribution.bytes_per_worker()
        assert sorted(loads) == [30, 1000]

    def test_lpt_within_4_3_of_optimal_bound(self):
        files = refs(*range(1, 30))
        workers = 4
        distribution = SizeBalancedStrategy().distribute(files, workers)
        loads = distribution.bytes_per_worker()
        descending = sorted((r.size for r in files), reverse=True)
        # LPT guarantee: makespan <= 4/3 OPT; OPT >= mean, biggest item,
        # and the (m)+(m+1) largest pair (two must share a worker).
        optimum_bound = max(
            sum(loads) / workers,
            descending[0],
            descending[workers - 1] + descending[workers],
        )
        assert max(loads) <= optimum_bound * 4 / 3 + 1e-9


class TestSharedQueue:
    def test_lock_operations_counted(self):
        strategy = SharedQueueStrategy()
        files = refs(*[1] * 50)
        strategy.distribute(files, 4)
        # One put and one get per filename: the pair of lock operations
        # the paper blames for pipelined stage 1 being inefficient.
        assert strategy.lock_operations >= 100

    def test_queue_blocking_close(self):
        queue = WorkQueue()
        queue.put(FileRef("a", 1))
        queue.close()
        assert queue.get().path == "a"
        assert queue.get() is None

    def test_queue_rejects_put_after_close(self):
        queue = WorkQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put(FileRef("a", 1))

    def test_queue_len(self):
        queue = WorkQueue(refs(1, 2))
        assert len(queue) == 2


class TestWorkStealing:
    def test_static_equals_round_robin(self):
        files = refs(*range(1, 20))
        ws = WorkStealingStrategy().distribute(files, 3)
        rr = RoundRobinStrategy().distribute(files, 3)
        assert [
            [r.path for r in a] for a in ws.assignments
        ] == [[r.path for r in a] for a in rr.assignments]

    def test_deque_owner_pops_fifo(self):
        deque = StealingDeque(refs(1, 2, 3))
        assert deque.pop_own().path == "f0"
        assert deque.pop_own().path == "f1"

    def test_deque_thief_steals_from_back(self):
        deque = StealingDeque(refs(1, 2, 3))
        assert deque.steal().path == "f2"
        assert deque.steals_suffered == 1

    def test_empty_deque(self):
        deque = StealingDeque()
        assert deque.pop_own() is None
        assert deque.steal() is None

    def test_next_item_prefers_own(self):
        deques = WorkStealingStrategy().make_deques(refs(1, 2, 3, 4), 2)
        item = WorkStealingStrategy.next_item(deques, 0)
        assert item.path == "f0"

    def test_next_item_steals_when_dry(self):
        deques = [StealingDeque(), StealingDeque(refs(1, 2))]
        item = WorkStealingStrategy.next_item(deques, 0)
        assert item is not None
        assert deques[1].steals_suffered == 1

    def test_next_item_exhausted(self):
        deques = [StealingDeque(), StealingDeque()]
        assert WorkStealingStrategy.next_item(deques, 0) is None

    def test_all_items_consumed_exactly_once(self):
        files = refs(*range(1, 30))
        deques = WorkStealingStrategy().make_deques(files, 3)
        seen = []
        # Worker 0 consumes everything (others idle), forcing steals.
        while True:
            item = WorkStealingStrategy.next_item(deques, 0)
            if item is None:
                break
            seen.append(item.path)
        assert sorted(seen) == sorted(r.path for r in files)


class TestDistributionMetrics:
    def test_bytes_per_worker(self):
        distribution = RoundRobinStrategy().distribute(refs(10, 20, 30), 2)
        assert distribution.bytes_per_worker() == [40, 20]

    def test_imbalance_perfect(self):
        distribution = RoundRobinStrategy().distribute(refs(10, 10), 2)
        assert distribution.imbalance() == pytest.approx(1.0)

    def test_imbalance_empty(self):
        distribution = RoundRobinStrategy().distribute([], 2)
        assert distribution.imbalance() == 1.0
