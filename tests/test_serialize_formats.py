"""The collapsed save/load pair: one ``format`` keyword, auto-sniffing.

``save_index``/``load_index`` subsume what used to be four entry
points.  Covered here: explicit ``"json"``/``"binary"`` selection,
extension-driven auto on save, magic-driven auto on load (including
raw RWIRE1 wire bytes and renamed files), loud mismatch failures, and
the deprecated ``*_binary`` aliases that must keep working while
warning.
"""

from __future__ import annotations

import pytest

from repro.index import (
    INDEX_FORMATS,
    InvertedIndex,
    index_to_bytes,
    load_index,
    load_index_binary,
    save_index,
    save_index_binary,
)
from repro.text.termblock import TermBlock


@pytest.fixture
def index():
    built = InvertedIndex()
    built.add_block(TermBlock("a.txt", ("alpha", "shared")))
    built.add_block(TermBlock("b.txt", ("beta", "shared")))
    return built


class TestExplicitFormats:
    @pytest.mark.parametrize("format", ("json", "binary", "ridx2"))
    def test_round_trip(self, index, tmp_path, format):
        path = str(tmp_path / "out.dat")
        written = save_index(index, path, format=format)
        assert written > 0
        assert load_index(path, format=format) == index

    def test_binary_is_smaller_than_json(self, index, tmp_path):
        json_path = str(tmp_path / "a.dat")
        binary_path = str(tmp_path / "b.dat")
        json_written = save_index(index, json_path, format="json")
        binary_written = save_index(index, binary_path, format="binary")
        assert binary_written < json_written

    def test_unknown_format_rejected(self, index, tmp_path):
        path = str(tmp_path / "out.dat")
        with pytest.raises(ValueError, match="format"):
            save_index(index, path, format="pickle")
        save_index(index, path)
        with pytest.raises(ValueError, match="format"):
            load_index(path, format="pickle")

    def test_formats_constant_is_the_contract(self):
        assert INDEX_FORMATS == ("json", "binary", "ridx2", "auto")


class TestAutoSave:
    @pytest.mark.parametrize("name", ("out.ridx", "out.bin", "OUT.RIDX"))
    def test_binary_extensions_choose_binary(self, index, tmp_path, name):
        path = str(tmp_path / name)
        save_index(index, path)
        with open(path, "rb") as fh:
            assert fh.read(5) == b"RIDX1"

    @pytest.mark.parametrize("name", ("out.ridx2", "OUT.RIDX2"))
    def test_ridx2_extension_chooses_ridx2(self, index, tmp_path, name):
        path = str(tmp_path / name)
        save_index(index, path)
        with open(path, "rb") as fh:
            assert fh.read(5) == b"RIDX2"
        assert load_index(path) == index

    @pytest.mark.parametrize("name", ("out.idx", "out.json", "out"))
    def test_other_extensions_choose_json(self, index, tmp_path, name):
        path = str(tmp_path / name)
        save_index(index, path)
        with open(path, "rb") as fh:
            assert fh.read(1) == b"{"


class TestAutoLoad:
    def test_sniffs_binary_despite_json_extension(self, index, tmp_path):
        # renamed files load fine: the magic decides, not the name
        path = str(tmp_path / "lying-name.idx")
        save_index(index, path, format="binary")
        assert load_index(path) == index

    def test_sniffs_json_despite_binary_extension(self, index, tmp_path):
        path = str(tmp_path / "lying-name.ridx")
        save_index(index, path, format="json")
        assert load_index(path) == index

    def test_loads_wire_bytes(self, index, tmp_path):
        path = str(tmp_path / "replica.ridx")
        with open(path, "wb") as fh:
            fh.write(index_to_bytes(index, wire=True))
        assert load_index(path) == index


class TestMismatchesFailLoudly:
    def test_json_file_as_binary(self, index, tmp_path):
        path = str(tmp_path / "out.idx")
        save_index(index, path, format="json")
        with pytest.raises(ValueError):
            load_index(path, format="binary")

    def test_binary_file_as_json(self, index, tmp_path):
        path = str(tmp_path / "out.ridx")
        save_index(index, path, format="binary")
        with pytest.raises(ValueError):
            load_index(path, format="json")


class TestDeprecatedAliases:
    def test_save_alias_warns_and_writes_binary(self, index, tmp_path):
        path = str(tmp_path / "legacy.ridx")
        with pytest.warns(DeprecationWarning, match="save_index"):
            written = save_index_binary(index, path)
        assert written > 0
        with open(path, "rb") as fh:
            assert fh.read(5) == b"RIDX1"

    def test_load_alias_warns_and_round_trips(self, index, tmp_path):
        path = str(tmp_path / "legacy.ridx")
        save_index(index, path, format="binary")
        with pytest.warns(DeprecationWarning, match="load_index"):
            assert load_index_binary(path) == index
