"""RIDX2: the blocked on-disk format and its mmap reader.

Covers the format's edge cases (empty index, one term, a term spanning
many blocks, doc-id gaps wider than 2^28, empty postings dropped at
dump time), the codec round-trips at the block level, the header and
magic sniffing failure modes (:class:`IndexFormatError` for
RIDX1/RIDX2/RWIRE1/JSON/unknown/truncated), and the
:class:`MmapPostingsReader` serving surface — lexicon binary search,
block cursors, block-skip accounting, and frequency storage.
"""

from __future__ import annotations

import pytest

from repro.index import (
    IndexFormatError,
    InvertedIndex,
    MmapPostingsReader,
    dump_index_ridx2,
    load_index,
    load_index_ridx2,
    save_index,
    sniff_format,
)
from repro.index.binfmt import (
    RIDX2_DEFAULT_BLOCK,
    decode_block_docids,
    decode_block_freqs,
    dump_index_bytes,
    dump_index_wire,
    encode_posting_blocks,
    parse_ridx2_header,
)
from repro.index.ondisk import DONE
from repro.query.ranking import FrequencyIndex
from repro.text.termblock import TermBlock


def build_index(docs):
    """docs: {path: iterable of terms} -> (InvertedIndex, FrequencyIndex)."""
    index = InvertedIndex()
    frequencies = FrequencyIndex()
    for path in sorted(docs):
        terms = list(docs[path])
        index.add_block(TermBlock(path, tuple(sorted(set(terms)))))
        frequencies.add_document(path, terms)
    return index, frequencies


@pytest.fixture
def fruit_docs():
    return {
        "a/one.txt": "apple banana cherry apple".split(),
        "b/two.txt": "banana date elderberry".split(),
        "c/three.txt": "apple cherry fig grape".split(),
        "d/four.txt": "grape banana apple apple apple".split(),
    }


@pytest.fixture
def fruit_file(tmp_path, fruit_docs):
    index, frequencies = build_index(fruit_docs)
    path = str(tmp_path / "fruit.ridx2")
    save_index(index, path, format="ridx2", frequencies=frequencies)
    return path


class TestPostingBlockCodec:
    def test_round_trip_single_block(self):
        ids = [0, 1, 5, 9, 200]
        entries, blob = encode_posting_blocks(ids, block_size=128)
        assert len(entries) == 1
        offset, last, count, doc_bytes, freq_bytes, codec = entries[0]
        assert (last, count) == (200, 5)
        assert decode_block_docids(blob, offset, count, doc_bytes) == ids

    def test_round_trip_many_blocks(self):
        ids = list(range(0, 1000, 3))
        entries, blob = encode_posting_blocks(ids, block_size=7)
        assert len(entries) == -(-len(ids) // 7)
        decoded = []
        for offset, last, count, doc_bytes, _fb, _codec in entries:
            chunk = decode_block_docids(blob, offset, count, doc_bytes)
            assert chunk[-1] == last
            decoded.extend(chunk)
        assert decoded == ids

    def test_gaps_wider_than_2_to_28(self):
        # Multi-byte varints: gaps needing 1..5 LEB128 bytes, including
        # one wider than 2^28 (the 5-byte threshold).
        ids = [0, 1, 300, 2**21, 2**28 + 7, 2**28 + 7 + (2**28 + 1)]
        entries, blob = encode_posting_blocks(ids, block_size=4)
        decoded = []
        for offset, _last, count, doc_bytes, _fb, _codec in entries:
            decoded.extend(decode_block_docids(blob, offset, count, doc_bytes))
        assert decoded == ids

    def test_frequencies_ride_along(self):
        ids = [3, 4, 10]
        freqs = [1, 7, 300]
        entries, blob = encode_posting_blocks(ids, freqs=freqs, block_size=2)
        got = []
        for offset, _l, count, doc_bytes, freq_bytes, _c in entries:
            got.extend(
                decode_block_freqs(blob, offset + doc_bytes, count, freq_bytes)
            )
        assert got == freqs

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError, match="frequenc"):
            encode_posting_blocks([1, 2], freqs=[1, 0])

    def test_rejects_unsorted_ids(self):
        with pytest.raises(ValueError):
            encode_posting_blocks([5, 3])


class TestRidx2RoundTrip:
    def test_empty_index(self):
        index = InvertedIndex()
        data = dump_index_ridx2(index)
        loaded = load_index_ridx2(data)
        assert len(loaded) == 0
        header = parse_ridx2_header(data)
        assert header.doc_count == 0
        assert header.term_count == 0

    def test_single_term(self):
        index, _ = build_index({"only.txt": ["solo"]})
        loaded = load_index_ridx2(dump_index_ridx2(index))
        assert loaded.lookup("solo") == ["only.txt"]

    def test_term_spanning_many_blocks(self):
        docs = {f"doc-{i:04d}.txt": ["common"] for i in range(500)}
        index, _ = build_index(docs)
        data = dump_index_ridx2(index, block_size=8)
        loaded = load_index_ridx2(data)
        assert sorted(loaded.lookup("common")) == sorted(docs)

    def test_fruit_corpus(self, fruit_docs):
        index, frequencies = build_index(fruit_docs)
        data = dump_index_ridx2(index, frequencies=frequencies)
        loaded = load_index_ridx2(data)
        assert loaded == index

    def test_empty_postings_are_dropped(self):
        # A term whose postings list emptied (e.g. after removals) is
        # canonicalized away rather than written as a zero-block term.
        index, _ = build_index({"a.txt": ["keep"]})
        index._map["ghost"] = type(index._map["keep"])([])
        data = dump_index_ridx2(index)
        header = parse_ridx2_header(data)
        assert header.term_count == 1
        assert "ghost" not in load_index_ridx2(data).terms()

    def test_deterministic_bytes(self, fruit_docs):
        index, _ = build_index(fruit_docs)
        assert dump_index_ridx2(index) == dump_index_ridx2(index)

    def test_default_block_size_written(self, fruit_docs):
        index, _ = build_index(fruit_docs)
        header = parse_ridx2_header(dump_index_ridx2(index))
        assert header.block_size == RIDX2_DEFAULT_BLOCK


class TestFormatSniffing:
    def test_sniffs_each_magic(self, fruit_docs):
        index, _ = build_index(fruit_docs)
        assert sniff_format(dump_index_ridx2(index)[:8]) == "ridx2"
        assert sniff_format(dump_index_bytes(index)[:8]) == "binary"
        assert sniff_format(dump_index_wire(index)[:8]) == "binary"
        assert sniff_format(b'{"format"') == "json"
        assert sniff_format(b"GARBAGE!") is None

    def test_load_index_round_trips_every_format(
        self, tmp_path, fruit_docs
    ):
        index, _ = build_index(fruit_docs)
        for format in ("json", "binary", "ridx2"):
            path = str(tmp_path / f"idx.{format}")
            save_index(index, path, format=format)
            assert load_index(path) == index

    def test_unknown_magic_names_bytes_and_formats(self, tmp_path):
        path = str(tmp_path / "mystery.idx")
        with open(path, "wb") as fh:
            fh.write(b"PDFX1\x00\x00\x00 not an index")
        with pytest.raises(IndexFormatError) as excinfo:
            load_index(path)
        message = str(excinfo.value)
        assert "PDFX1" in message
        assert "RIDX1" in message and "RIDX2" in message
        assert "RWIRE1" in message and "JSON" in message

    def test_empty_file_is_a_clear_error(self, tmp_path):
        path = str(tmp_path / "empty.idx")
        open(path, "wb").close()
        with pytest.raises(IndexFormatError, match="empty"):
            load_index(path)

    def test_truncated_ridx2_header(self, tmp_path, fruit_docs):
        index, _ = build_index(fruit_docs)
        data = dump_index_ridx2(index)
        path = str(tmp_path / "cut.ridx2")
        with open(path, "wb") as fh:
            fh.write(data[:20])  # magic survives, header does not
        with pytest.raises(IndexFormatError, match="truncated"):
            load_index(path)

    def test_wrong_magic_rejected_by_parser(self):
        with pytest.raises(IndexFormatError, match="RIDX2"):
            parse_ridx2_header(b"RIDX1" + b"\x00" * 100)

    def test_frequencies_rejected_for_non_ridx2(self, tmp_path, fruit_docs):
        index, frequencies = build_index(fruit_docs)
        with pytest.raises(ValueError, match="RIDX2"):
            save_index(
                index, str(tmp_path / "x.ridx"), format="binary",
                frequencies=frequencies,
            )


class TestMmapPostingsReader:
    def test_open_reads_header_only_stats(self, fruit_file, fruit_docs):
        with MmapPostingsReader(fruit_file) as reader:
            assert reader.doc_count == len(fruit_docs)
            assert reader.term_count == 7
            assert reader.has_freqs
            total = sum(len(terms) for terms in fruit_docs.values())
            assert reader.total_doc_len == total
            assert reader.average_document_length == total / len(fruit_docs)

    def test_doc_ids_are_sorted_path_order(self, fruit_file, fruit_docs):
        with MmapPostingsReader(fruit_file) as reader:
            assert reader.doc_paths() == sorted(fruit_docs)
            for i, path in enumerate(sorted(fruit_docs)):
                assert reader.doc_path(i) == path
                assert reader.doc_length(i) == len(fruit_docs[path])

    def test_term_info_binary_search(self, fruit_file):
        with MmapPostingsReader(fruit_file) as reader:
            info = reader.term_info("banana")
            assert info.df == 3
            assert reader.term_info("zzz-absent") is None
            assert "banana" in reader
            assert "zzz-absent" not in reader

    def test_terms_walk_is_sorted(self, fruit_file):
        with MmapPostingsReader(fruit_file) as reader:
            terms = list(reader.terms())
            assert terms == sorted(terms)
            assert "apple" in terms

    def test_lookup_matches_in_memory(self, fruit_file, fruit_docs):
        index, _ = build_index(fruit_docs)
        with MmapPostingsReader(fruit_file) as reader:
            for term in index.terms():
                assert reader.lookup(term) == sorted(index.lookup(term))
            assert reader.lookup("zzz-absent") == []

    def test_cursor_walk_and_freqs(self, fruit_file, fruit_docs):
        _, frequencies = build_index(fruit_docs)
        with MmapPostingsReader(fruit_file) as reader:
            cursor = reader.cursor("apple")
            seen = []
            while cursor.docid() < DONE:
                path = reader.doc_path(cursor.docid())
                assert cursor.freq() == frequencies.tf("apple", path)
                seen.append(path)
                cursor.next()
            assert seen == sorted(
                p for p, t in fruit_docs.items() if "apple" in t
            )

    def test_open_rejects_non_ridx2(self, tmp_path, fruit_docs):
        index, _ = build_index(fruit_docs)
        path = str(tmp_path / "old.ridx")
        save_index(index, path, format="binary")
        with pytest.raises(IndexFormatError):
            MmapPostingsReader(path)

    def test_open_rejects_empty_file(self, tmp_path):
        path = str(tmp_path / "zero.ridx2")
        open(path, "wb").close()
        with pytest.raises(IndexFormatError, match="empty"):
            MmapPostingsReader(path)

    def test_without_frequencies_tf_defaults_to_one(
        self, tmp_path, fruit_docs
    ):
        index, _ = build_index(fruit_docs)
        path = str(tmp_path / "nofreq.ridx2")
        save_index(index, path, format="ridx2")
        with MmapPostingsReader(path) as reader:
            assert not reader.has_freqs
            cursor = reader.cursor("apple")
            while cursor.docid() < DONE:
                assert cursor.freq() == 1
                cursor.next()
            # Doc length falls back to the distinct-term count.
            for i, doc_path in enumerate(sorted(fruit_docs)):
                assert reader.doc_length(i) == len(set(fruit_docs[doc_path]))


class TestBlockSkipping:
    @pytest.fixture
    def skippy_file(self, tmp_path):
        # "rare" lives in documents 0 and 900; "common" is everywhere.
        # With 8-posting blocks, seeking common's cursor from doc 0 to
        # doc 900 must jump over ~112 blocks without decoding them.
        docs = {f"doc-{i:04d}": ["common"] for i in range(901)}
        docs["doc-0000"].append("rare")
        docs["doc-0900"].append("rare")
        index, _ = build_index(docs)
        path = str(tmp_path / "skippy.ridx2")
        with open(path, "wb") as fh:
            fh.write(dump_index_ridx2(index, block_size=8))
        return path

    def test_seek_skips_blocks(self, skippy_file):
        with MmapPostingsReader(skippy_file) as reader:
            cursor = reader.cursor("common")
            assert cursor.seek(900) == 900
            stats = reader.stats()
            assert stats["ondisk.blocks_skipped"] > 100
            # Only the first and the target block were decoded.
            assert stats["ondisk.blocks_read"] == 2

    def test_and_query_skips(self, skippy_file):
        from repro.query.daat import DaatQueryEngine

        with MmapPostingsReader(skippy_file) as reader:
            engine = DaatQueryEngine(reader)
            assert engine.search("rare AND common") == [
                "doc-0000", "doc-0900",
            ]
            assert reader.blocks_skipped > 0

    def test_seek_to_done(self, skippy_file):
        with MmapPostingsReader(skippy_file) as reader:
            cursor = reader.cursor("rare")
            assert cursor.seek(901) == DONE
            assert cursor.docid() == DONE

    def test_seek_is_monotone_noop_backwards(self, skippy_file):
        with MmapPostingsReader(skippy_file) as reader:
            cursor = reader.cursor("common")
            assert cursor.seek(500) == 500
            assert cursor.seek(100) == 500  # never rewinds
