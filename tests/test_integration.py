"""Cross-module integration tests: corpus -> engine -> query -> disk,
and real engine vs. simulated engine consistency."""

import pytest

from repro.corpus import CorpusGenerator, TINY_PROFILE, materialize
from repro.engine import (
    Implementation,
    IndexGenerator,
    SequentialIndexer,
    ThreadConfig,
)
from repro.fsmodel import OsFileSystem
from repro.index import (
    MultiIndex,
    join_indices,
    load_index,
    load_multi_index,
    save_index,
    save_multi_index,
)
from repro.platforms import QUAD_CORE
from repro.query import QueryEngine
from repro.simengine import SimPipeline, Workload

ALL_RUNS = [
    (Implementation.SHARED_LOCKED, ThreadConfig(3, 0, 0)),
    (Implementation.SHARED_LOCKED, ThreadConfig(3, 2, 0)),
    (Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)),
    (Implementation.REPLICATED_JOINED, ThreadConfig(4, 0, 2)),
    (Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)),
    (Implementation.REPLICATED_UNJOINED, ThreadConfig(4, 0, 0)),
]


class TestAllImplementationsAgree:
    """The paper's core correctness requirement: every implementation and
    configuration builds the same logical index."""

    @pytest.fixture(scope="class")
    def reports(self, tiny_fs):
        generator = IndexGenerator(tiny_fs)
        sequential = SequentialIndexer(tiny_fs).build()
        parallel = [
            generator.build(implementation, config)
            for implementation, config in ALL_RUNS
        ]
        return sequential, parallel

    def test_term_counts_agree(self, reports):
        sequential, parallel = reports
        for report in parallel:
            assert report.term_count == sequential.term_count

    def test_posting_counts_agree(self, reports):
        sequential, parallel = reports
        for report in parallel:
            assert report.posting_count == sequential.posting_count

    def test_lookups_agree(self, reports, tiny_reference_index):
        sequential, parallel = reports
        sample_terms = list(tiny_reference_index)[:25]
        for report in parallel:
            for term in sample_terms:
                assert sorted(report.lookup(term)) == sorted(
                    sequential.lookup(term)
                ), f"{report.implementation} {report.config} disagrees on {term!r}"

    def test_joined_multi_equals_joined_single(self, reports):
        _, parallel = reports
        multi_reports = [
            r for r in parallel if isinstance(r.index, MultiIndex)
        ]
        joined_reports = [
            r
            for r in parallel
            if r.implementation is Implementation.REPLICATED_JOINED
        ]
        joined_multi = join_indices(multi_reports[0].index.replicas)
        assert joined_multi == joined_reports[0].index


class TestDiskRoundTrip:
    """Generate on disk, index from disk, persist, reload, search."""

    @pytest.fixture(scope="class")
    def disk_corpus(self, tmp_path_factory):
        corpus = CorpusGenerator(TINY_PROFILE).generate()
        destination = str(tmp_path_factory.mktemp("corpus") / "files")
        materialize(corpus.fs, destination)
        return destination

    def test_disk_index_matches_memory_index(self, disk_corpus, tiny_fs):
        memory = SequentialIndexer(tiny_fs).build()
        disk = SequentialIndexer(OsFileSystem(disk_corpus)).build()
        assert disk.index == memory.index

    def test_save_load_search(self, disk_corpus, tmp_path):
        report = IndexGenerator(OsFileSystem(disk_corpus)).build(
            Implementation.SHARED_LOCKED, ThreadConfig(2, 1, 0)
        )
        path = str(tmp_path / "out.idx")
        save_index(report.index, path)
        loaded = load_index(path)
        term = next(iter(loaded.terms()))
        engine = QueryEngine(loaded)
        assert engine.search(term) == sorted(report.lookup(term))

    def test_multi_save_load_search(self, disk_corpus, tmp_path):
        report = IndexGenerator(OsFileSystem(disk_corpus)).build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        directory = str(tmp_path / "replicas")
        save_multi_index(report.index, directory)
        loaded = load_multi_index(directory)
        term = next(iter(loaded.replicas[0].terms()))
        assert QueryEngine(loaded).search(term) == sorted(report.lookup(term))


class TestRealVsSimulatedEngine:
    """The simulated pipeline must mirror the real engine structurally."""

    def test_workload_statistics_match_engine_output(
        self, tiny_corpus, tiny_workload, tiny_fs
    ):
        report = SequentialIndexer(tiny_fs).build()
        # Total unique (term, file) pairs == the index's posting count.
        assert tiny_workload.total_unique_pairs == report.posting_count
        assert len(tiny_workload) == report.file_count

    def test_sim_accepts_exact_corpus_workload(self, tiny_workload):
        pipeline = SimPipeline(QUAD_CORE, tiny_workload, batches_per_extractor=10)
        result = pipeline.run(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        assert result.total_s > 0

    def test_sim_and_engine_accept_same_configs(self, tiny_workload, tiny_fs):
        pipeline = SimPipeline(QUAD_CORE, tiny_workload, batches_per_extractor=5)
        generator = IndexGenerator(tiny_fs)
        for implementation, config in ALL_RUNS:
            pipeline.run(implementation, config)
            generator.build(implementation, config)

    def test_sim_rejects_what_engine_rejects(self, tiny_workload, tiny_fs):
        bad = [
            (Implementation.SHARED_LOCKED, ThreadConfig(1, 0, 1)),
            (Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 0)),
            (Implementation.REPLICATED_UNJOINED, ThreadConfig(1, 1, 0)),
        ]
        pipeline = SimPipeline(QUAD_CORE, tiny_workload, batches_per_extractor=5)
        generator = IndexGenerator(tiny_fs)
        for implementation, config in bad:
            with pytest.raises(ValueError):
                pipeline.run(implementation, config)
            with pytest.raises(ValueError):
                generator.build(implementation, config)


class TestQueryOverEveryIndexKind:
    def test_same_results_single_joined_multi(self, tiny_fs):
        generator = IndexGenerator(tiny_fs)
        single = generator.build(
            Implementation.SHARED_LOCKED, ThreadConfig(3, 1, 0)
        )
        joined = generator.build(
            Implementation.REPLICATED_JOINED, ThreadConfig(3, 2, 1)
        )
        multi = generator.build(
            Implementation.REPLICATED_UNJOINED, ThreadConfig(3, 2, 0)
        )
        universe = [ref.path for ref in tiny_fs.list_files()]
        terms = list(single.index.terms())[:5]
        query = f"{terms[0]} OR ({terms[1]} AND NOT {terms[2]})"
        engines = [
            QueryEngine(report.index, universe=universe)
            for report in (single, joined, multi)
        ]
        expected = engines[0].search(query)
        for engine in engines[1:]:
            assert engine.search(query) == expected
            assert engine.search(query, parallel=True) == expected
