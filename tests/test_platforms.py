"""Tests for the platform profiles."""

import pytest

from repro.platforms import (
    ALL_PLATFORMS,
    MANYCORE_32,
    OCTO_CORE,
    PlatformProfile,
    QUAD_CORE,
    platform_by_name,
)


class TestCalibratedProfiles:
    def test_three_platforms(self):
        assert len(ALL_PLATFORMS) == 3
        assert {p.cores for p in ALL_PLATFORMS} == {4, 8, 32}

    def test_lookup_by_name(self):
        assert platform_by_name("quad-core") is QUAD_CORE
        assert platform_by_name("octo-core") is OCTO_CORE
        assert platform_by_name("manycore-32") is MANYCORE_32

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            platform_by_name("pentium-ii")

    def test_paper_clock_speeds(self):
        assert QUAD_CORE.clock_ghz == 2.4
        assert OCTO_CORE.clock_ghz == 1.86
        assert MANYCORE_32.clock_ghz == 2.27

    def test_update_split_matches_table1(self):
        assert QUAD_CORE.update_total_s == pytest.approx(22.0)
        assert OCTO_CORE.update_total_s == pytest.approx(29.0)
        assert MANYCORE_32.update_total_s == pytest.approx(28.0)

    def test_sequential_totals_match_paper(self):
        assert QUAD_CORE.sequential_total_s == 220.0
        assert OCTO_CORE.sequential_total_s == 105.0
        assert MANYCORE_32.sequential_total_s == 90.0

    def test_octo_disk_nearly_saturated_by_one_stream(self):
        # The paper's 8-core machine: a single reader already uses most
        # of the aggregate bandwidth, hence its poor parallel speed-up.
        ratio = OCTO_CORE.aggregate_mbps / OCTO_CORE.per_stream_mbps
        assert ratio < 1.2

    def test_quad_and_manycore_have_parallel_headroom(self):
        assert QUAD_CORE.aggregate_mbps / QUAD_CORE.per_stream_mbps > 1.5
        assert MANYCORE_32.aggregate_mbps / MANYCORE_32.per_stream_mbps > 3.0


class TestProfileValidation:
    def base_kwargs(self):
        return dict(
            name="test", cores=4, clock_ghz=2.0, filename_gen_s=5.0,
            per_stream_mbps=10.0, scan_cpu_s=10.0, update_prep_s=10.0,
            update_critical_s=10.0, naive_update_s=100.0,
            sequential_total_s=200.0, aggregate_mbps=20.0,
            read_cpu_fraction=0.1, shared_coherence=0.2, lock_op_us=10.0,
            buffer_op_us=10.0, join_mpairs_per_s=10.0,
        )

    def test_valid_profile(self):
        PlatformProfile(**self.base_kwargs())

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            PlatformProfile(**{**self.base_kwargs(), "cores": 0})

    def test_aggregate_below_stream_rejected(self):
        with pytest.raises(ValueError):
            PlatformProfile(**{**self.base_kwargs(), "aggregate_mbps": 5.0})

    def test_read_fraction_bounds(self):
        with pytest.raises(ValueError):
            PlatformProfile(**{**self.base_kwargs(), "read_cpu_fraction": 1.0})

    def test_negative_coherence_rejected(self):
        with pytest.raises(ValueError):
            PlatformProfile(**{**self.base_kwargs(), "shared_coherence": -0.1})

    def test_coherence_multiplier(self):
        profile = PlatformProfile(**self.base_kwargs())
        assert profile.coherence_multiplier(1) == 1.0
        assert profile.coherence_multiplier(3) == pytest.approx(1.4)
        assert profile.coherence_multiplier(0) == 1.0

    def test_seek_multiplier(self):
        profile = PlatformProfile(
            **{**self.base_kwargs(), "disk_thrash": 0.5}
        )
        assert profile.seek_multiplier(1) == 1.0
        assert profile.seek_multiplier(3) == pytest.approx(2.0)
