"""Randomized and adversarial stress tests for the concurrency substrate.

Three fronts, one per primitive:

* :class:`BoundedBuffer` — randomized producer/consumer runs must
  deliver every put exactly once; closing while threads are blocked
  must never deadlock; lock-operation accounting must stay exact.
* :class:`ReusableBarrier` — reusable across generations under real
  contention, and the timeout path must not corrupt the arrival count
  (regression for the phantom-arrival bug).
* :class:`ShardedLock` — colliding-stripe counter updates are never
  lost, and the FNV stripe distribution is not degenerate.

The deterministic-schedule variants of these properties live in
``test_schedcheck.py`` / ``test_engine_matrix.py``; this file hammers
the real ``threading`` primitives.
"""

from __future__ import annotations

import collections
import random
import threading
import typing

import pytest

from repro.concurrency import (
    BoundedBuffer,
    Closed,
    ReusableBarrier,
    ShardedLock,
)

JOIN_TIMEOUT = 10.0


def _join_all(threads):
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"threads deadlocked: {stuck}"


def _spawn(target, *args, name=None):
    thread = threading.Thread(target=target, args=args, name=name, daemon=True)
    thread.start()
    return thread


class TestBoundedBufferStress:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_put_got_exactly_once(self, seed):
        rng = random.Random(seed)
        producers = rng.randint(1, 4)
        consumers = rng.randint(1, 4)
        capacity = rng.randint(1, 8)
        per_producer = rng.randint(20, 60)
        buffer: BoundedBuffer = BoundedBuffer(capacity)
        consumed = collections.Counter()
        consumed_lock = threading.Lock()

        def produce(worker: int) -> None:
            for i in range(per_producer):
                buffer.put((worker, i))

        def consume() -> None:
            while True:
                try:
                    item = buffer.get()
                except Closed:
                    return
                with consumed_lock:
                    consumed[item] += 1

        consumer_threads = [_spawn(consume) for _ in range(consumers)]
        producer_threads = [_spawn(produce, w) for w in range(producers)]
        _join_all(producer_threads)
        buffer.close()
        _join_all(consumer_threads)

        expected = collections.Counter(
            (w, i) for w in range(producers) for i in range(per_producer)
        )
        assert consumed == expected

    def test_close_releases_blocked_consumers(self):
        buffer: BoundedBuffer = BoundedBuffer(4)
        outcomes = []

        def consume() -> None:
            try:
                buffer.get()
            except Closed:
                outcomes.append("closed")

        threads = [_spawn(consume) for _ in range(3)]
        # Let every consumer reach the empty-buffer wait, then close.
        while buffer.lock_operations < 3:
            pass
        buffer.close()
        _join_all(threads)
        assert outcomes == ["closed"] * 3

    def test_close_releases_blocked_producers(self):
        buffer: BoundedBuffer = BoundedBuffer(1)
        buffer.put("fills-the-buffer")
        outcomes = []

        def produce() -> None:
            try:
                buffer.put("blocked")
            except Closed:
                outcomes.append("closed")

        threads = [_spawn(produce) for _ in range(3)]
        while buffer.lock_operations < 4:  # initial put + three blocked
            pass
        buffer.close()
        _join_all(threads)
        assert outcomes == ["closed"] * 3

    def test_lock_operation_accounting_is_exact(self):
        # puts - gets == capacity: the producer exactly fills the buffer
        # after the consumer stops, so neither side can block forever.
        buffer: BoundedBuffer = BoundedBuffer(8)
        puts, gets = 29, 21

        def produce() -> None:
            for i in range(puts):
                buffer.put(i)

        def consume() -> None:
            for _ in range(gets):
                buffer.get()

        threads = [_spawn(produce), _spawn(consume)]
        _join_all(threads)
        # One counted lock round-trip per completed put/get call,
        # regardless of how often the condition waits woke spuriously.
        assert buffer.lock_operations == puts + gets
        assert len(buffer) == puts - gets


class TestReusableBarrierStress:
    def test_reusable_across_generations_under_contention(self):
        parties = 4
        generations = 5
        barrier = ReusableBarrier(parties)
        seen = [[] for _ in range(generations)]
        seen_lock = threading.Lock()

        def worker(worker_id: int) -> None:
            for generation in range(generations):
                barrier.wait()
                with seen_lock:
                    seen[generation].append(worker_id)

        threads = [_spawn(worker, w) for w in range(parties)]
        _join_all(threads)
        assert barrier.generation == generations
        assert barrier.waiting == 0
        for generation in range(generations):
            assert sorted(seen[generation]) == list(range(parties))

    def test_wait_signature_allows_none_timeout(self):
        hints = typing.get_type_hints(ReusableBarrier.wait)
        assert hints["timeout"] == typing.Optional[float]

    def test_timeout_raises_and_does_not_corrupt_the_barrier(self):
        """Regression: a timed-out waiter used to leave a phantom
        arrival behind, releasing the next cycle one thread early."""
        barrier = ReusableBarrier(2)
        with pytest.raises(TimeoutError):
            barrier.wait(timeout=0.05)
        assert barrier.waiting == 0, "timed-out arrival leaked"

        # The barrier still needs BOTH parties to release a cycle: a
        # single waiter with a timeout must time out again, not pass.
        with pytest.raises(TimeoutError):
            barrier.wait(timeout=0.05)
        assert barrier.generation == 0

        # And a full complement of arrivals still works afterwards.
        results = []
        threads = [
            _spawn(lambda: results.append(barrier.wait())) for _ in range(2)
        ]
        _join_all(threads)
        assert sorted(results) == [0, 1]
        assert barrier.generation == 1

    def test_timeout_race_with_completion_is_not_an_error(self):
        """A waiter whose timeout expires just as the last party arrives
        must be released normally, not raise TimeoutError."""
        barrier = ReusableBarrier(2)
        results = []
        errors = []

        def patient() -> None:
            try:
                # Generous timeout: the releaser below arrives first in
                # practice; either way no TimeoutError may escape once
                # the generation has advanced.
                results.append(barrier.wait(timeout=5.0))
            except TimeoutError as exc:  # pragma: no cover - the bug
                errors.append(exc)

        thread = _spawn(patient)
        while barrier.waiting == 0:
            pass
        results.append(barrier.wait())
        _join_all([thread])
        assert not errors
        assert sorted(results) == [0, 1]


class TestShardedLockStress:
    def test_colliding_stripe_updates_are_never_lost(self):
        """Many threads increment counters whose keys collide on a few
        stripes; striped locking must make every increment stick."""
        lock = ShardedLock(shards=4)
        counters = collections.defaultdict(int)
        keys = [f"term{i}" for i in range(12)]
        increments = 200
        workers = 4

        def worker(worker_id: int) -> None:
            rng = random.Random(worker_id)
            for _ in range(increments):
                key = rng.choice(keys)
                with lock.locked(key):
                    counters[key] += 1

        threads = [_spawn(worker, w) for w in range(workers)]
        _join_all(threads)
        assert sum(counters.values()) == workers * increments

    def test_locked_all_excludes_stripe_holders(self):
        lock = ShardedLock(shards=4)
        total = 0

        def worker() -> None:
            nonlocal total
            for _ in range(100):
                with lock.locked("key"):
                    total += 1

        threads = [_spawn(worker) for _ in range(3)]
        # Snapshots under locked_all never observe a torn in-stripe
        # update (the counter only moves while no snapshot holds all).
        for _ in range(20):
            with lock.locked_all():
                snapshot = total
                assert snapshot == total
        _join_all(threads)
        assert total == 300

    def test_stripe_distribution_is_not_degenerate(self):
        lock = ShardedLock(shards=8)
        hits = collections.Counter(
            lock.shard_for(f"word{i}") for i in range(4000)
        )
        assert set(hits) == set(range(8)), "some stripe never selected"
        expected = 4000 / 8
        for stripe, count in hits.items():
            assert 0.5 * expected <= count <= 1.5 * expected, (
                f"stripe {stripe} got {count} of 4000 keys — "
                "FNV striping is badly skewed"
            )

    def test_shard_for_is_stable(self):
        lock = ShardedLock(shards=16)
        assert all(
            lock.shard_for(key) == lock.shard_for(key)
            for key in ("a", "b", "longer-term")
        )
