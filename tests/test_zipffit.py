"""Tests for Zipf-exponent estimation, closing the generator loop."""

import pytest

from repro.corpus import CorpusGenerator, TINY_PROFILE, ZipfSampler, Vocabulary
from repro.corpus.zipffit import (
    corpus_zipf_exponent,
    estimate_zipf_exponent,
    rank_frequencies,
)


class TestRankFrequencies:
    def test_counts_and_order(self):
        terms = ["a"] * 5 + ["b"] * 3 + ["c"]
        assert rank_frequencies(terms) == [5, 3, 1]

    def test_empty(self):
        assert rank_frequencies([]) == []


class TestEstimateExponent:
    def test_exact_power_law(self):
        # f(r) = 10^6 / r^1.2 exactly.
        frequencies = [int(1e6 / (r**1.2)) for r in range(1, 300)]
        estimate = estimate_zipf_exponent(frequencies, max_rank=200)
        assert estimate == pytest.approx(1.2, abs=0.02)

    def test_exponent_one(self):
        frequencies = [int(1e6 / r) for r in range(1, 300)]
        assert estimate_zipf_exponent(frequencies) == pytest.approx(
            1.0, abs=0.02
        )

    def test_sampler_matches_its_parameter(self):
        sampler = ZipfSampler(2000, s=1.1, seed=5)
        ranks = sampler.sample_many(200_000)
        frequencies = rank_frequencies(str(r) for r in ranks)
        estimate = estimate_zipf_exponent(frequencies, min_rank=2,
                                          max_rank=100)
        assert estimate == pytest.approx(1.1, abs=0.15)

    def test_too_few_terms_rejected(self):
        with pytest.raises(ValueError):
            estimate_zipf_exponent([10])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            estimate_zipf_exponent([5, 4, 3], min_rank=3, max_rank=2)


class TestCorpusExponent:
    def test_generated_corpus_close_to_profile(self, tiny_fs):
        estimate = corpus_zipf_exponent(tiny_fs, max_rank=100)
        # TINY_PROFILE generates with s = 1.1; tokenization and finite
        # sampling blur it, but the power law must be clearly there.
        assert estimate == pytest.approx(
            TINY_PROFILE.zipf_exponent, abs=0.3
        )

    def test_uniform_text_is_not_zipfian(self):
        from repro.fsmodel import VirtualFileSystem

        fs = VirtualFileSystem()
        words = Vocabulary(200, seed=1).words
        # Every word exactly once per file: flat distribution, s ~ 0.
        fs.write_file("a.txt", " ".join(words).encode())
        fs.write_file("b.txt", " ".join(words).encode())
        estimate = corpus_zipf_exponent(fs, max_rank=100)
        assert abs(estimate) < 0.2
