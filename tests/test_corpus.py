"""Tests for vocabulary, Zipf sampling, profiles and corpus generation."""

import pytest

from repro.corpus import (
    CorpusGenerator,
    CorpusProfile,
    PAPER_PROFILE,
    TINY_PROFILE,
    Vocabulary,
    ZipfSampler,
    materialize,
)
from repro.corpus.zipf import expected_unique_terms
from repro.fsmodel.stats import largest_files


class TestVocabulary:
    def test_size(self):
        assert len(Vocabulary(100)) == 100

    def test_distinct(self):
        vocabulary = Vocabulary(5000, seed=3)
        assert len(set(vocabulary.words)) == 5000

    def test_deterministic(self):
        assert Vocabulary(50, seed=1).words == Vocabulary(50, seed=1).words

    def test_seed_changes_words(self):
        assert Vocabulary(50, seed=1).words != Vocabulary(50, seed=2).words

    def test_words_are_ascii_lowercase(self):
        for word in Vocabulary(200).words:
            assert word.isascii()
            assert word == word.lower()

    def test_indexing(self):
        vocabulary = Vocabulary(10)
        assert vocabulary[0] == vocabulary.words[0]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Vocabulary(0)


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, seed=0)
        for rank in sampler.sample_many(1000):
            assert 0 <= rank < 100

    def test_deterministic(self):
        a = ZipfSampler(100, seed=7).sample_many(100)
        b = ZipfSampler(100, seed=7).sample_many(100)
        assert a == b

    def test_rank_zero_most_frequent(self):
        sampler = ZipfSampler(1000, seed=0)
        counts = {}
        for rank in sampler.sample_many(20_000):
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(0, 0) > counts.get(50, 0)
        assert counts.get(0, 0) > counts.get(500, 0)

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50)
        assert sum(sampler.probability(r) for r in range(50)) == pytest.approx(1.0)

    def test_probability_decreasing(self):
        sampler = ZipfSampler(50)
        probabilities = [sampler.probability(r) for r in range(50)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probability_out_of_range(self):
        with pytest.raises(IndexError):
            ZipfSampler(10).probability(10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=0)

    def test_expected_unique_bounds(self):
        expected = expected_unique_terms(1000, 200)
        assert 1.0 < expected <= 200.0

    def test_expected_unique_monotone_in_draws(self):
        small = expected_unique_terms(10, 100)
        large = expected_unique_terms(1000, 100)
        assert small < large


class TestProfiles:
    def test_paper_profile_matches_paper(self):
        assert PAPER_PROFILE.file_count == 51_000
        assert PAPER_PROFILE.total_bytes == 869_000_000
        assert PAPER_PROFILE.large_file_count == 5

    def test_scaled_preserves_shape(self):
        scaled = PAPER_PROFILE.scaled(0.1)
        assert scaled.large_file_count == 5
        assert scaled.file_count == 5_100
        assert scaled.total_bytes == 86_900_000

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            PAPER_PROFILE.scaled(0)

    def test_budgets_add_up(self):
        assert (
            PAPER_PROFILE.large_file_bytes + PAPER_PROFILE.small_file_bytes
            == PAPER_PROFILE.total_bytes
        )

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            CorpusProfile(name="bad", file_count=5, total_bytes=100,
                          large_file_count=5)
        with pytest.raises(ValueError):
            CorpusProfile(name="bad", file_count=100, total_bytes=10)
        with pytest.raises(ValueError):
            CorpusProfile(name="bad", file_count=100, total_bytes=10_000,
                          large_bytes_fraction=1.5)


class TestGenerator:
    def test_file_count(self, tiny_corpus):
        stats = tiny_corpus.stats()
        assert stats.file_count == TINY_PROFILE.file_count

    def test_total_bytes_near_budget(self, tiny_corpus):
        stats = tiny_corpus.stats()
        # Word granularity loses a little per file; within 15 %.
        assert stats.total_bytes == pytest.approx(
            TINY_PROFILE.total_bytes, rel=0.15
        )

    def test_large_files_exist(self, tiny_corpus):
        refs = list(tiny_corpus.fs.list_files())
        top = largest_files(refs, TINY_PROFILE.large_file_count)
        assert all(ref.path.startswith("large/") for ref in top)

    def test_content_is_ascii_words(self, tiny_corpus):
        fs = tiny_corpus.fs
        ref = next(iter(fs.list_files()))
        content = fs.read_file(ref.path)
        text = content.decode("ascii")
        assert all(c.isalnum() or c in " \n" for c in text)

    def test_deterministic(self):
        a = CorpusGenerator(TINY_PROFILE).generate()
        b = CorpusGenerator(TINY_PROFILE).generate()
        paths_a = [(r.path, r.size) for r in a.fs.list_files()]
        paths_b = [(r.path, r.size) for r in b.fs.list_files()]
        assert paths_a == paths_b
        sample = paths_a[0][0]
        assert a.fs.read_file(sample) == b.fs.read_file(sample)

    def test_terms_come_from_vocabulary(self, tiny_corpus, tokenizer):
        fs = tiny_corpus.fs
        ref = next(iter(fs.list_files()))
        words = set(tiny_corpus.vocabulary.words)
        for term in tokenizer.tokenize(fs.read_file(ref.path))[:50]:
            assert term in words


class TestMaterialize:
    def test_writes_all_files(self, tiny_corpus, tmp_path):
        destination = str(tmp_path / "corpus")
        count = materialize(tiny_corpus.fs, destination)
        assert count == TINY_PROFILE.file_count

    def test_content_round_trip(self, tiny_corpus, tmp_path):
        from repro.fsmodel import OsFileSystem

        destination = str(tmp_path / "corpus")
        materialize(tiny_corpus.fs, destination)
        on_disk = OsFileSystem(destination)
        ref = next(iter(tiny_corpus.fs.list_files()))
        assert on_disk.read_file(ref.path) == tiny_corpus.fs.read_file(ref.path)

    def test_refuses_nonempty_destination(self, tiny_corpus, tmp_path):
        (tmp_path / "junk.txt").write_text("boo")
        with pytest.raises(FileExistsError):
            materialize(tiny_corpus.fs, str(tmp_path))
