"""Unit tests for the snapshot-isolated query service.

Covers the single-threaded contracts of :mod:`repro.service`: snapshot
immutability and succession, admission control (shed vs block), the
refresher protocol, graceful drain on close, and the stats/metrics
surface.  The interleaving-level guarantees live in
``test_service_concurrency.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.index.inverted import InvertedIndex
from repro.service import (
    IndexSnapshot,
    QueryResult,
    SearchService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.snapshot import universe_of
from repro.text.termblock import TermBlock


def index_for(generation: int) -> InvertedIndex:
    """A tiny index whose answer identifies its generation."""
    index = InvertedIndex()
    index.add_block(
        TermBlock(f"gen{generation}.txt", ("probe", f"g{generation}"))
    )
    return index


class BlockingEngine:
    """A stand-in engine whose searches park until released."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def search(self, query_text, parallel=False):
        self.entered.set()
        assert self.release.wait(timeout=5.0), "never released"
        return ["blocked.txt"]


def blocking_service(**kwargs):
    engine = BlockingEngine()
    snapshot = IndexSnapshot(index_for(0), engine=engine)
    return SearchService(snapshot, **kwargs), engine


class TestIndexSnapshot:
    def test_universe_is_transposed_from_postings(self):
        assert universe_of(index_for(3)) == {"gen3.txt"}
        snapshot = IndexSnapshot(index_for(3))
        assert snapshot.universe == {"gen3.txt"}

    def test_search_uses_own_engine(self):
        snapshot = IndexSnapshot(index_for(1))
        assert snapshot.search("probe") == ["gen1.txt"]
        assert snapshot.search("NOT probe") == []

    def test_next_bumps_generation_and_keeps_original(self):
        first = IndexSnapshot(index_for(0))
        second = first.next(index_for(1), "refresh")
        assert (first.generation, second.generation) == (0, 1)
        assert second.provenance == "refresh"
        assert first.search("probe") == ["gen0.txt"]
        assert second.search("probe") == ["gen1.txt"]
        assert "generation 1" in second.describe()

    def test_snapshot_is_frozen(self):
        snapshot = IndexSnapshot(index_for(0))
        with pytest.raises(AttributeError):
            snapshot.generation = 9


class TestQueryResult:
    def test_sequence_protocol(self):
        result = QueryResult(paths=["a.txt", "b.txt"], generation=4)
        assert len(result) == 2
        assert list(result) == ["a.txt", "b.txt"]
        assert "a.txt" in result and "c.txt" not in result
        assert result.generation == 4
        assert not result.cached


class TestServiceBasics:
    def test_query_returns_typed_result(self):
        with SearchService(IndexSnapshot(index_for(0)), workers=2) as service:
            result = service.query("probe")
            assert isinstance(result, QueryResult)
            assert result.paths == ["gen0.txt"]
            assert result.generation == 0
            assert result.elapsed_s >= 0.0

    def test_constructor_validation(self):
        snapshot = IndexSnapshot(index_for(0))
        with pytest.raises(ValueError):
            SearchService(snapshot, workers=0)
        with pytest.raises(ValueError):
            SearchService(snapshot, max_inflight=0)
        with pytest.raises(ValueError):
            SearchService(snapshot, shed="panic")

    def test_query_error_propagates_to_caller(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            with pytest.raises(Exception):
                service.query("AND AND")  # unparsable
            # the worker survives the bad query
            assert service.query("probe").paths == ["gen0.txt"]

    def test_stats_counts_served(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            for _ in range(3):
                service.query("probe")
            stats = service.stats()
        assert stats["service.served"] == 3.0
        assert stats["service.inflight"] == 0.0
        assert stats["service.generation"] == 0.0


class TestPublish:
    def test_publish_bumps_generation_atomically(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            before = service.snapshot
            published = service.publish(index_for(1))
            assert published.generation == 1
            assert service.generation == 1
            assert service.query("probe").paths == ["gen1.txt"]
            # the superseded snapshot still answers from its own index
            assert before.search("probe") == ["gen0.txt"]

    def test_publish_carries_provenance_and_universe(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            published = service.publish(
                index_for(1), provenance="manual",
                universe=frozenset({"gen1.txt"}),
            )
            assert published.provenance == "manual"
            assert published.universe == {"gen1.txt"}


class TestRefresh:
    def test_refresher_forms(self):
        # bare index, 1-tuple, and the full 4-tuple all publish
        for payload in (
            index_for(1),
            (index_for(1),),
            (index_for(1), frozenset({"gen1.txt"}), None, "change"),
        ):
            service = SearchService(
                IndexSnapshot(index_for(0)), refresher=lambda: payload
            )
            try:
                outcome = service.refresh()
                assert outcome.generation == 1
                assert service.query("probe").paths == ["gen1.txt"]
            finally:
                service.close()

    def test_refresh_outcome_carries_change(self):
        service = SearchService(
            IndexSnapshot(index_for(0)),
            refresher=lambda: (index_for(1), None, None, "delta"),
        )
        try:
            outcome = service.refresh()
            assert outcome.change == "delta"
            assert "generation 1" in str(outcome)
        finally:
            service.close()

    def test_refresh_without_refresher_raises(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            with pytest.raises(ValueError):
                service.refresh()


class TestAdmissionControl:
    def test_reject_sheds_beyond_bound(self):
        service, engine = blocking_service(workers=1, max_inflight=1)
        try:
            background = threading.Thread(
                target=lambda: service.query("probe")
            )
            background.start()
            assert engine.entered.wait(timeout=5.0)
            # the one slot is taken by the parked query
            with pytest.raises(ServiceOverloadedError):
                service.query("probe")
            assert service.stats()["service.shed"] == 1.0
        finally:
            engine.release.set()
            background.join()
            service.close()

    def test_block_policy_waits_for_a_slot(self):
        service, engine = blocking_service(
            workers=1, max_inflight=1, shed="block"
        )
        results = []
        try:
            first = threading.Thread(target=lambda: service.query("probe"))
            first.start()
            assert engine.entered.wait(timeout=5.0)
            second = threading.Thread(
                target=lambda: results.append(service.query("probe"))
            )
            second.start()
            time.sleep(0.05)  # second must still be waiting, not shed
            assert results == []
            engine.release.set()
            second.join(timeout=5.0)
            first.join(timeout=5.0)
            assert len(results) == 1
            assert results[0].paths == ["blocked.txt"]
            assert service.stats()["service.shed"] == 0.0
        finally:
            engine.release.set()
            service.close()


class TestLifecycle:
    def test_close_drains_accepted_queries(self):
        service, engine = blocking_service(workers=1, max_inflight=8)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(service.query("probe"))
            )
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        assert engine.entered.wait(timeout=5.0)
        engine.release.set()
        service.close()
        for thread in threads:
            thread.join(timeout=5.0)
        # every accepted query was answered, none dropped
        assert len(results) == 3
        assert service.closed

    def test_query_after_close_raises(self):
        service = SearchService(IndexSnapshot(index_for(0)))
        service.close()
        with pytest.raises(ServiceClosedError):
            service.query("probe")

    def test_close_is_idempotent(self):
        service = SearchService(IndexSnapshot(index_for(0)))
        service.close()
        service.close()
        assert service.closed

    def test_context_manager_closes(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            service.query("probe")
        assert service.closed


class TestShedAccountingAndShutdown:
    """Regressions: shed counting under ``shed="block"`` and shutdown.

    Two bugs this pins down: (a) a query that blocked at admission and
    was later admitted (or turned away by shutdown) must never be
    counted as shed — it was never rejected; (b) ``close()`` must wake
    callers blocked at admission with a typed error instead of leaving
    them waiting on a condition nobody will ever signal again.
    """

    def test_blocked_then_admitted_counts_served_not_shed(self):
        service, engine = blocking_service(
            workers=1, max_inflight=1, shed="block"
        )
        results = []
        try:
            first = threading.Thread(
                target=lambda: results.append(service.query("probe"))
            )
            first.start()
            assert engine.entered.wait(timeout=5.0)
            second = threading.Thread(
                target=lambda: results.append(service.query("probe"))
            )
            second.start()
            time.sleep(0.05)
            engine.release.set()
            first.join(timeout=5.0)
            second.join(timeout=5.0)
            assert len(results) == 2
            stats = service.stats()
            assert stats["service.served"] == 2.0
            assert stats["service.shed"] == 0.0
        finally:
            engine.release.set()
            service.close()

    def test_close_wakes_blocked_admitters(self):
        service, engine = blocking_service(
            workers=1, max_inflight=1, shed="block"
        )
        outcomes = []

        def blocked_admitter():
            try:
                outcomes.append(service.query("probe"))
            except ServiceClosedError as exc:
                outcomes.append(exc)

        first = threading.Thread(target=lambda: service.query("probe"))
        first.start()
        assert engine.entered.wait(timeout=5.0)
        second = threading.Thread(target=blocked_admitter)
        second.start()
        time.sleep(0.05)  # let it park on the admission condition
        closer = threading.Thread(target=service.close)
        closer.start()
        time.sleep(0.05)
        engine.release.set()
        second.join(timeout=5.0)
        assert not second.is_alive(), "blocked admitter never woke"
        first.join(timeout=5.0)
        closer.join(timeout=5.0)
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], ServiceClosedError)
        assert service.stats()["service.shed"] == 0.0

    def test_close_without_drain_sheds_queued_jobs_once_each(self):
        service, engine = blocking_service(workers=1, max_inflight=8)
        results, errors = [], []

        def caller():
            try:
                results.append(service.query("probe"))
            except ServiceOverloadedError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(3)]
        for thread in threads:
            thread.start()
        assert engine.entered.wait(timeout=5.0)
        time.sleep(0.05)  # two queued behind the parked one
        closer = threading.Thread(
            target=lambda: service.close(drain=False)
        )
        closer.start()
        time.sleep(0.05)
        engine.release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        closer.join(timeout=5.0)
        # the executing query finished; the queued ones were shed with
        # a typed error, each counted exactly once
        assert len(results) == 1
        assert len(errors) == 2
        stats = service.stats()
        assert stats["service.shed"] == 2.0
        assert stats["service.queue_depth"] == 0.0


class TestWatch:
    def test_watch_validation(self):
        with SearchService(IndexSnapshot(index_for(0))) as service:
            with pytest.raises(ValueError):
                service.start_watch(0)
            with pytest.raises(ValueError):
                service.start_watch(1.0)  # no refresher

    def test_watch_refreshes_periodically_and_stops_on_close(self):
        generations = iter(range(1, 100))
        service = SearchService(
            IndexSnapshot(index_for(0)),
            refresher=lambda: index_for(next(generations)),
        )
        service.start_watch(0.01)
        with pytest.raises(RuntimeError):
            service.start_watch(0.01)  # already watching
        deadline = time.time() + 5.0
        while service.generation < 2 and time.time() < deadline:
            time.sleep(0.01)
        assert service.generation >= 2
        service.close()
        settled = service.generation
        time.sleep(0.05)  # the watch thread must be gone
        assert service.generation == settled
