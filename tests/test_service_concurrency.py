"""Interleaving-level guarantees of the query service.

The claim under test: a query never observes a half-published snapshot.
Three layers of evidence, mirroring ``test_cache_concurrency.py``:

1. a deterministic schedule sweep — the service takes every lock,
   condition and thread from an
   :class:`~repro.schedcheck.sync.InstrumentedSyncProvider`, publishes
   while readers query, and across seeds and strategies (a) every
   result matches exactly one generation and (b) the race detector
   finds nothing on the swap seam;
2. a mutation run with the snapshot lock broken that *does* race —
   proof the sweep's silence is earned by the lock, not by detector
   blindness;
3. a real-thread stress test mixing refreshes with concurrent queries,
   asserting the same exactly-one-generation oracle at OS-thread speed.
"""

from __future__ import annotations

import threading

import pytest

from repro.index.inverted import InvertedIndex
from repro.schedcheck import (
    CooperativeScheduler,
    InstrumentedSyncProvider,
    Tracer,
    UnlockedSyncProvider,
    find_races,
    make_strategy,
)
from repro.service import IndexSnapshot, SearchService
from repro.text.termblock import TermBlock


def index_for(generation: int) -> InvertedIndex:
    index = InvertedIndex()
    index.add_block(
        TermBlock(f"gen{generation}.txt", ("probe", f"g{generation}"))
    )
    return index


#: what a query against generation g must return — and nothing else.
EXPECTED = {g: [f"gen{g}.txt"] for g in range(8)}


def service_scenario(provider):
    """Readers query "probe" while a publisher swaps in new generations.

    Every result must come from exactly one published generation: the
    paths must be precisely that generation's expected answer.  A torn
    read — a result pairing generation N's id with generation M's
    paths, or a half-visible index — fails the oracle.
    """
    service = SearchService(
        IndexSnapshot(index_for(0)),
        workers=1,
        max_inflight=8,
        sync=provider,
    )
    observed = []

    def reader() -> None:
        for _ in range(3):
            observed.append(service.query("probe"))

    def publisher() -> None:
        for generation in (1, 2):
            service.publish(index_for(generation))

    threads = [
        provider.thread(reader, name="reader"),
        provider.thread(publisher, name="publisher"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.close()

    assert len(observed) == 3
    for result in observed:
        assert result.paths == EXPECTED[result.generation]
    return service


class TestScheduleSweep:
    @pytest.mark.parametrize("strategy", ("random", "pct"))
    @pytest.mark.parametrize("seed", range(4))
    def test_no_torn_reads_and_no_races(self, strategy, seed):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy(strategy, seed))
        provider = InstrumentedSyncProvider(tracer=tracer,
                                            scheduler=scheduler)
        provider.run(lambda: service_scenario(provider))
        assert find_races(tracer) == []

    def test_record_mode_sees_the_swap_seam(self):
        # Sanity: the snapshot reference accesses reach the tracer, so
        # the sweep above is actually watching the swap.
        tracer = Tracer()
        provider = InstrumentedSyncProvider(tracer=tracer)
        provider.run(lambda: service_scenario(provider))
        locations = {access.location for access in tracer.accesses}
        assert "service.snapshot" in locations
        writes = [a for a in tracer.accesses
                  if a.location == "service.snapshot" and a.write]
        assert len(writes) == 2  # one per publish

    def test_broken_snapshot_lock_is_caught(self):
        # Mutation self-test: strip the snapshot lock and the detector
        # must report a race on the swap seam in at least one schedule.
        for seed in range(8):
            tracer = Tracer()
            scheduler = CooperativeScheduler(make_strategy("random", seed))
            provider = UnlockedSyncProvider(
                tracer=tracer,
                scheduler=scheduler,
                break_locks=("service.snapshot-lock",),
            )
            try:
                provider.run(lambda: service_scenario(provider))
            except AssertionError:
                # a genuinely torn read surfacing is also a detection
                return
            races = find_races(tracer)
            if any("service.snapshot" in race.location for race in races):
                return
        pytest.fail("no schedule exposed the broken snapshot lock")


def block_shutdown_scenario(provider):
    """``shed="block"`` admitters racing ``close()``: no hang, ever.

    A query that blocks at the admission bound while another executes
    must end one of exactly two ways whatever the interleaving: served
    (admitted before the close took effect) or a typed
    ``ServiceClosedError`` — and never counted as shed.  A schedule
    that left the admitter parked forever would deadlock the
    cooperative scheduler and fail the sweep.
    """
    from repro.service import ServiceClosedError

    service = SearchService(
        IndexSnapshot(index_for(0)),
        workers=1,
        max_inflight=1,
        shed="block",
        sync=provider,
    )
    served = []
    turned_away = []

    def reader() -> None:
        for _ in range(2):
            try:
                served.append(service.query("probe"))
            except ServiceClosedError as exc:
                turned_away.append(exc)

    def closer() -> None:
        service.close()

    threads = [
        provider.thread(reader, name="reader-a"),
        provider.thread(reader, name="reader-b"),
        provider.thread(closer, name="closer"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.close()

    assert len(served) + len(turned_away) == 4
    for result in served:
        assert result.paths == EXPECTED[result.generation]
    assert service.stats()["service.shed"] == 0.0


class TestBlockShutdownSweep:
    @pytest.mark.parametrize("strategy", ("random", "pct"))
    @pytest.mark.parametrize("seed", range(4))
    def test_blocked_admitters_always_terminate(self, strategy, seed):
        tracer = Tracer()
        scheduler = CooperativeScheduler(make_strategy(strategy, seed))
        provider = InstrumentedSyncProvider(tracer=tracer,
                                            scheduler=scheduler)
        provider.run(lambda: block_shutdown_scenario(provider))
        assert find_races(tracer) == []


class TestRealThreadStress:
    READERS = 6
    QUERIES = 40
    REFRESHES = 6

    def test_refresh_under_concurrent_query_load(self):
        generations = iter(range(1, self.REFRESHES + 1))
        service = SearchService(
            IndexSnapshot(index_for(0)),
            refresher=lambda: index_for(next(generations)),
            workers=3,
            max_inflight=64,
        )
        start = threading.Barrier(self.READERS + 1)
        mismatches = []
        errors = []

        def reader() -> None:
            start.wait()
            try:
                for _ in range(self.QUERIES):
                    result = service.query("probe")
                    if result.paths != EXPECTED[result.generation]:
                        mismatches.append(result)
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        def refresher() -> None:
            start.wait()
            try:
                for _ in range(self.REFRESHES):
                    service.refresh()
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        threads = [threading.Thread(target=reader)
                   for _ in range(self.READERS)]
        threads.append(threading.Thread(target=refresher))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()

        assert errors == []
        assert mismatches == []
        assert service.generation == self.REFRESHES
        stats = service.stats()
        assert stats["service.served"] == self.READERS * self.QUERIES
