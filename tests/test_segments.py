"""The segmented LSM-style index: manifests, tombstones, compaction.

The two load-bearing invariants:

* after any mutation sequence — including a replay after an injected
  mid-refresh crash — the manifest's live view equals a from-scratch
  rebuild of the current filesystem state;
* a compacted manifest's canonical RIDX2 bytes are *identical* to the
  rebuild's, whether the merges ran in-process or on the process pool.
"""

import pytest

from repro.engine.procbackend import CompactionExecutor
from repro.engine.sequential import SequentialIndexer
from repro.fsmodel.faultfs import FaultInjectingFileSystem, FaultSpec
from repro.fsmodel.vfs import VirtualFileSystem
from repro.index.binfmt import dump_index_ridx2
from repro.index.inverted import InvertedIndex
from repro.index.segments import (
    BackgroundCompactor,
    CompactionPolicy,
    DiskSegment,
    MemorySegment,
    SegmentManifest,
    SegmentedIndexer,
    compact_manifest,
    merge_segment_payload,
)
from repro.obs import recorder as obsrec
from repro.text.termblock import TermBlock


def make_fs():
    fs = VirtualFileSystem()
    fs.write_file("a.txt", b"cat dog")
    fs.write_file("b.txt", b"dog ferret")
    fs.write_file("c.txt", b"cat mouse bird")
    return fs


def rebuild_bytes(fs):
    return dump_index_ridx2(SequentialIndexer(fs, naive=False).build().index)


def bootstrapped(fs):
    indexer = SegmentedIndexer(fs)
    fingerprints = indexer.fingerprint_corpus()
    indexer.adopt(SequentialIndexer(fs, naive=False).build().index, fingerprints)
    return indexer


def seg(segment_id, docs):
    return MemorySegment(
        segment_id,
        {path: TermBlock(path, tuple(terms)) for path, terms in docs.items()},
    )


class TestSegmentManifest:
    def test_newest_segment_owns_the_path(self):
        manifest = SegmentManifest(
            [
                seg(0, {"a.txt": ["cat", "dog"]}),
                seg(1, {"a.txt": ["ferret"]}),
            ]
        )
        assert manifest.lookup("ferret") == ["a.txt"]
        assert manifest.lookup("cat") == []
        assert len(manifest) == 1

    def test_tombstone_hides_every_revision(self):
        manifest = SegmentManifest(
            [seg(0, {"a.txt": ["cat"], "b.txt": ["dog"]})],
            tombstones={"a.txt"},
        )
        assert manifest.lookup("cat") == []
        assert manifest.document_paths() == ["b.txt"]
        assert "a.txt" not in manifest

    def test_terms_lists_only_live_terms(self):
        manifest = SegmentManifest(
            [
                seg(0, {"a.txt": ["cat", "dog"]}),
                seg(1, {"a.txt": ["dog"]}),
            ]
        )
        # "cat" exists only in the shadowed revision.
        assert manifest.terms() == ["dog"]

    def test_materialize_equals_plain_index(self):
        manifest = SegmentManifest(
            [
                seg(0, {"a.txt": ["cat"], "b.txt": ["dog"]}),
                seg(1, {"a.txt": ["bird"]}),
            ],
            tombstones={"b.txt"},
        )
        expected = InvertedIndex()
        expected.add_block(TermBlock("a.txt", ("bird",)))
        assert manifest.materialize() == expected

    def test_tombstone_ratio(self):
        manifest = SegmentManifest(
            [seg(0, {"a.txt": ["x"], "b.txt": ["y"]})], tombstones={"a.txt"}
        )
        assert manifest.tombstone_ratio == 0.5
        assert SegmentManifest().tombstone_ratio == 0.0


class TestSegmentedRefresh:
    def test_refresh_appends_segment_and_tombstones(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        fs.write_file("d.txt", b"newt")
        fs.remove_file("b.txt")
        change = indexer.refresh()
        assert change.added == ["d.txt"]
        assert change.removed == ["b.txt"]
        manifest = indexer.manifest
        assert manifest.segment_count == 2
        assert manifest.tombstones == {"b.txt"}
        assert manifest.lookup("newt") == ["d.txt"]
        assert manifest.lookup("ferret") == []

    def test_unchanged_files_are_not_read(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        fs.replace_file("c.txt", b"changed words")
        indexer.refresh()
        assert indexer.last_scan_stats == {"files_seen": 3, "files_read": 1}

    def test_noop_refresh_keeps_manifest(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        before = indexer.manifest
        change = indexer.refresh()
        assert change.total == 0
        assert indexer.manifest is before

    def test_remove_and_readd_identical_is_not_misclassified(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        content = fs.read_file("b.txt")
        fs.remove_file("b.txt")
        fs.write_file("b.txt", content)
        change = indexer.refresh()
        # Same bytes at the same path: neither removed nor modified.
        assert change.total == 0
        assert "b.txt" not in indexer.manifest.tombstones
        assert indexer.manifest.lookup("ferret") == ["b.txt"]
        # And the refreshed stamp means the next scan skips it again.
        indexer.refresh()
        assert indexer.last_scan_stats["files_read"] == 0

    def test_removed_then_changed_readd_is_modified_not_tombstoned(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        fs.remove_file("b.txt")
        fs.write_file("b.txt", b"entirely new words")
        change = indexer.refresh()
        assert change.modified == ["b.txt"]
        assert change.removed == []
        assert "b.txt" not in indexer.manifest.tombstones
        assert indexer.manifest.lookup("entirely") == ["b.txt"]

    def test_crashed_refresh_leaves_state_intact_and_replays(self):
        fs = make_fs()
        faulty = FaultInjectingFileSystem(
            fs, {"c.txt": FaultSpec(action="error", exc_type=OSError)}
        )
        # Bootstrap against the clean fs, then point a fresh indexer at
        # the faulty one carrying the same state (same as a restart).
        clean = bootstrapped(fs)
        indexer = SegmentedIndexer(
            faulty,
            manifest=clean.manifest,
            fingerprints=clean.fingerprints,
        )
        fs.replace_file("a.txt", b"updated words")
        fs.replace_file("c.txt", b"poisoned words")
        before_manifest = indexer.manifest
        before_fingerprints = indexer.fingerprints
        with pytest.raises(OSError):
            indexer.refresh()
        # The crash mutated nothing observable.
        assert indexer.manifest is before_manifest
        assert indexer.fingerprints == before_fingerprints
        # Replay after a restart with the fault gone converges.
        replay = SegmentedIndexer(
            fs, manifest=indexer.manifest, fingerprints=indexer.fingerprints
        )
        change = replay.refresh()
        assert sorted(change.modified) == ["a.txt", "c.txt"]
        replay.compact()
        assert replay.manifest.to_ridx2() == rebuild_bytes(fs)

    def test_reconcile_after_open(self):
        fs = make_fs()
        index = SequentialIndexer(fs, naive=False).build().index
        fs.replace_file("a.txt", b"different now")
        fs.remove_file("b.txt")
        fs.write_file("d.txt", b"brand new")
        indexer = SegmentedIndexer(fs)
        indexer.adopt(index, {})
        change = indexer.reconcile()
        assert change.added == ["d.txt"]
        assert change.removed == ["b.txt"]
        assert change.modified == ["a.txt"]
        indexer.compact()
        assert indexer.manifest.to_ridx2() == rebuild_bytes(fs)


class TestCompaction:
    def churn(self, fs, indexer, rounds=5):
        for i in range(rounds):
            fs.write_file(f"extra{i}.txt", f"word{i} shared".encode())
            if i % 2 and fs.exists(f"extra{i - 1}.txt"):
                fs.remove_file(f"extra{i - 1}.txt")
            indexer.refresh()

    def test_layered_merge_is_byte_identical_to_rebuild(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        self.churn(fs, indexer)
        assert indexer.manifest.segment_count > 2
        indexer.compact(policy=CompactionPolicy(fanin=2))
        manifest = indexer.manifest
        assert manifest.segment_count == 1
        assert manifest.tombstones == frozenset()
        assert manifest.to_ridx2() == rebuild_bytes(fs)

    def test_compaction_on_the_process_pool(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        self.churn(fs, indexer)
        executor = CompactionExecutor(max_workers=2, oversubscribe=True)
        indexer.compact(policy=CompactionPolicy(fanin=2), executor=executor)
        assert indexer.manifest.to_ridx2() == rebuild_bytes(fs)

    def test_executor_falls_back_in_parent(self, monkeypatch):
        import repro.engine.procbackend as pb

        def broken(*_args, **_kwargs):
            raise OSError("no pool for you")

        monkeypatch.setattr(pb.multiprocessing, "get_context", broken)
        executor = CompactionExecutor(max_workers=2, oversubscribe=True)
        payloads = [
            ([[("a.txt", ("cat",))]], []),
            ([[("b.txt", ("dog",))]], []),
        ]
        blobs = executor.run(merge_segment_payload, payloads)
        assert executor.fallbacks == 1
        assert blobs == [merge_segment_payload(p) for p in payloads]

    def test_tombstone_only_compaction(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        fs.remove_file("b.txt")
        indexer.refresh()
        assert indexer.manifest.tombstones == {"b.txt"}
        assert indexer.compact() is True
        assert indexer.manifest.tombstones == frozenset()
        assert indexer.manifest.to_ridx2() == rebuild_bytes(fs)

    def test_policy_gates_unforced_compaction(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        policy = CompactionPolicy(max_segments=6)
        assert indexer.compact(policy=policy, force=False) is False
        self.churn(fs, indexer, rounds=7)
        assert indexer.compact(policy=policy, force=False) is True
        assert indexer.manifest.segment_count == 1

    def test_disk_segment_serving_after_compaction(self, tmp_path):
        fs = make_fs()
        indexer = SegmentedIndexer(fs, segment_dir=str(tmp_path))
        fingerprints = indexer.fingerprint_corpus()
        indexer.adopt(
            SequentialIndexer(fs, naive=False).build().index, fingerprints
        )
        fs.write_file("d.txt", b"newt cat")
        indexer.refresh()
        indexer.compact()
        [segment] = indexer.manifest.segments
        assert isinstance(segment, DiskSegment)
        assert sorted(indexer.manifest.lookup("cat")) == [
            "a.txt",
            "c.txt",
            "d.txt",
        ]
        assert indexer.manifest.to_ridx2() == rebuild_bytes(fs)
        # A later refresh merges the disk segment like any other.
        fs.replace_file("d.txt", b"owl")
        indexer.refresh()
        indexer.compact()
        assert indexer.manifest.to_ridx2() == rebuild_bytes(fs)

    def test_compact_manifest_pure_function(self):
        manifest = SegmentManifest(
            [
                seg(0, {"a.txt": ["cat"], "b.txt": ["dog"]}),
                seg(1, {"a.txt": ["bird"]}),
            ],
            tombstones={"b.txt"},
            generation=7,
        )
        compacted = compact_manifest(manifest, CompactionPolicy(fanin=2))
        assert compacted.generation == 8
        assert compacted.segment_count == 1
        assert compacted.lookup("bird") == ["a.txt"]
        assert compacted.lookup("cat") == []
        # The input manifest is untouched.
        assert manifest.segment_count == 2

    def test_obs_metrics_are_wired(self):
        from repro.obs.recorder import Recorder

        recorder = Recorder(enabled=True)
        previous = obsrec.set_recorder(recorder)
        try:
            fs = make_fs()
            indexer = bootstrapped(fs)
            fs.write_file("d.txt", b"newt")
            indexer.refresh()
            indexer.compact()
            metrics = recorder.metrics
            assert metrics.gauge("segments.count").value == 1
            assert metrics.gauge("segments.tombstones").value == 0
            assert metrics.counter("compaction.merged_bytes").value > 0
            assert metrics.counter("segments.files_read").value >= 1
            names = [s.name for s in recorder.spans]
            assert "segments.refresh" in names
            assert "compaction.run" in names
        finally:
            obsrec.set_recorder(previous)


class TestBackgroundCompactor:
    def test_compacts_when_due_and_stops(self):
        fs = make_fs()
        indexer = bootstrapped(fs)
        for i in range(4):
            fs.write_file(f"n{i}.txt", f"term{i}".encode())
            indexer.refresh()
        assert indexer.manifest.segment_count == 5
        policy = CompactionPolicy(fanin=2, max_segments=2)
        compactor = BackgroundCompactor(
            lambda: indexer.compact(policy=policy, force=False),
            interval_s=0.01,
        ).start()
        try:
            deadline = 100
            while indexer.manifest.segment_count > 1 and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
        finally:
            compactor.stop()
        assert indexer.manifest.segment_count == 1
        assert compactor.compactions >= 1
        assert indexer.manifest.to_ridx2() == rebuild_bytes(fs)


class TestAcrossBackends:
    """The compacted manifest's bytes do not depend on which engine
    built the base segment: every backend converges to the same
    canonical RIDX2 after the same churn."""

    def churn_and_compact(self, build):
        fs = make_fs()
        indexer = SegmentedIndexer(fs)
        fingerprints = indexer.fingerprint_corpus()
        indexer.adopt(build(fs), fingerprints)
        fs.write_file("d.txt", b"newt words")
        fs.replace_file("a.txt", b"rewritten cat")
        fs.remove_file("b.txt")
        indexer.refresh()
        indexer.compact(policy=CompactionPolicy(fanin=2))
        data = indexer.manifest.to_ridx2()
        assert data == rebuild_bytes(fs)
        return data

    def test_compacted_bytes_identical_across_backends(self):
        from repro.engine import (
            ProcessReplicatedIndexer,
            ReplicatedJoinedIndexer,
            SequentialIndexer as Sequential,
            ThreadConfig,
        )
        from repro.index.multi import MultiIndex

        def flat(index):
            from repro.index.merge import join_indices

            return (
                join_indices(index.replicas)
                if isinstance(index, MultiIndex)
                else index
            )

        builds = [
            lambda fs: Sequential(fs, naive=False).build().index,
            lambda fs: flat(
                ReplicatedJoinedIndexer(fs).build(ThreadConfig(2, 0, 1)).index
            ),
            lambda fs: flat(
                ProcessReplicatedIndexer(fs, oversubscribe=True)
                .build(ThreadConfig(2, 0, 1, backend="process"))
                .index
            ),
        ]
        first, *rest = [self.churn_and_compact(build) for build in builds]
        for data in rest:
            assert data == first
