"""Tests for simulator tracing and timeline rendering."""

import pytest

from repro.sim import Acquire, Delay, Kernel, Release, Use
from repro.sim.resources import SimLock
from repro.sim.trace import Tracer, render_timeline


def run_traced():
    tracer = Tracer()
    kernel = Kernel(tracer=tracer)
    cpu = kernel.resource("cpu", total_rate=2.0, per_job_cap=1.0)
    lock = SimLock()

    def worker(name_delay):
        yield Delay(name_delay)
        yield Use(cpu, 1.0)
        yield Acquire(lock)
        yield Use(cpu, 0.5)
        yield Release(lock)

    kernel.spawn("w1", worker(0.0))
    kernel.spawn("w2", worker(0.1))
    kernel.run()
    return tracer


class TestTracer:
    def test_records_all_kinds(self):
        tracer = run_traced()
        counts = tracer.count_by_kind()
        assert counts["Delay"] == 2
        assert counts["Use"] == 4
        assert counts["Acquire"] == 2
        assert counts["Release"] == 2
        assert counts["Finish"] == 2

    def test_events_ordered_by_time(self):
        tracer = run_traced()
        times = [event.time for event in tracer.events]
        assert times == sorted(times)

    def test_processes_in_first_appearance_order(self):
        tracer = run_traced()
        assert tracer.processes() == ["w1", "w2"]

    def test_events_for_single_process(self):
        tracer = run_traced()
        assert all(e.process == "w1" for e in tracer.events_for("w1"))
        assert len(tracer.events_for("w1")) == 6

    def test_end_time(self):
        tracer = run_traced()
        assert tracer.end_time > 1.5

    def test_limit_drops_excess(self):
        tracer = Tracer(limit=3)
        for i in range(10):
            tracer.record(float(i), "p", "Use")
        assert len(tracer.events) == 3
        assert tracer.dropped == 7

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)

    def test_untraced_kernel_records_nothing(self):
        kernel = Kernel()

        def process():
            yield Delay(1.0)

        kernel.spawn("p", process())
        kernel.run()  # must simply not crash without a tracer


class TestRenderTimeline:
    def test_contains_all_processes(self):
        text = render_timeline(run_traced())
        assert "w1" in text and "w2" in text

    def test_contains_glyphs(self):
        text = render_timeline(run_traced())
        assert "#" in text  # compute
        assert "L" in text  # lock acquire

    def test_legend_present(self):
        assert "Acquire" in render_timeline(run_traced())

    def test_empty_trace(self):
        assert render_timeline(Tracer()) == "(empty trace)"

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_timeline(run_traced(), width=2)

    def test_process_filter(self):
        text = render_timeline(run_traced(), processes=["w1"])
        assert "w1" in text
        assert "\nw2" not in text

    def test_pipeline_trace_integration(self, tiny_workload):
        """A full simulated build can be traced and rendered."""
        from repro.engine.config import Implementation, ThreadConfig
        from repro.platforms import QUAD_CORE
        from repro.simengine import SimPipeline

        tracer = Tracer()
        pipeline = SimPipeline(QUAD_CORE, tiny_workload,
                               batches_per_extractor=10, tracer=tracer)
        pipeline.run(Implementation.SHARED_LOCKED, ThreadConfig(2, 1, 0))
        assert any(e.process.startswith("extractor") for e in tracer.events)
        text = render_timeline(tracer)
        assert "extractor-0" in text
