"""Stateful property testing of the segmented index.

Hypothesis drives random filesystem churn (create, edit, delete),
refreshes, crash-injected refreshes, and periodic compactions against a
live :class:`~repro.index.segments.SegmentedIndexer`.  Two invariants
hold at every step:

* the manifest's live view always equals a from-scratch rebuild of the
  current filesystem state (checked as index equality after every
  refresh);
* after any compaction, the manifest's canonical RIDX2 bytes are
  *identical* to the rebuild's — merge-equivalence, byte for byte,
  regardless of the segment/tombstone history that led there.
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.engine import SequentialIndexer
from repro.fsmodel import VirtualFileSystem
from repro.fsmodel.faultfs import FaultInjectingFileSystem, FaultSpec
from repro.index.binfmt import dump_index_ridx2
from repro.index.segments import CompactionPolicy, SegmentedIndexer

words = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=6),
    min_size=0,
    max_size=6,
)
names = st.integers(min_value=0, max_value=9).map(lambda i: f"file{i}.txt")


class SegmentedMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.fs = VirtualFileSystem()
        self.indexer = SegmentedIndexer(self.fs)
        self.refreshed = True  # empty manifest == empty fs

    # -- filesystem churn ----------------------------------------------

    @rule(name=names, content=words)
    def create_or_edit(self, name, content):
        data = " ".join(content).encode()
        if self.fs.exists(name):
            self.fs.replace_file(name, data)
        else:
            self.fs.write_file(name, data)
        self.refreshed = False

    @rule(name=names)
    def delete(self, name):
        if self.fs.exists(name):
            self.fs.remove_file(name)
            self.refreshed = False

    # -- maintenance ---------------------------------------------------

    @rule()
    def refresh(self):
        self.indexer.refresh()
        self.refreshed = True

    @rule(name=names)
    def crashed_refresh_then_replay(self, name):
        """A refresh that dies reading ``name`` must leave no trace; the
        replay right after must fully converge."""
        if not self.fs.exists(name):
            return
        faulty = FaultInjectingFileSystem(
            self.fs, {name: FaultSpec(action="error", exc_type=OSError)}
        )
        crashing = SegmentedIndexer(
            faulty,
            manifest=self.indexer.manifest,
            fingerprints=self.indexer.fingerprints,
        )
        before = crashing.manifest
        try:
            crashing.refresh()
        except OSError:
            assert crashing.manifest is before
        self.indexer.refresh()
        self.refreshed = True

    @rule(fanin=st.integers(min_value=2, max_value=4))
    @precondition(lambda self: self.refreshed)
    def compact(self, fanin):
        self.indexer.compact(policy=CompactionPolicy(fanin=fanin))
        manifest = self.indexer.manifest
        assert manifest.segment_count <= 1
        assert not manifest.tombstones
        rebuilt = SequentialIndexer(self.fs, naive=False).build().index
        assert manifest.to_ridx2() == dump_index_ridx2(rebuilt)

    # -- the oracle ----------------------------------------------------

    @invariant()
    def matches_rebuild_when_refreshed(self):
        if not getattr(self, "refreshed", True):
            return
        rebuilt = SequentialIndexer(self.fs, naive=False).build().index
        assert self.indexer.manifest.materialize() == rebuilt

    @invariant()
    def live_view_consistent(self):
        manifest = self.indexer.manifest
        live = set(manifest.document_paths())
        assert live == manifest.live_paths()
        for term in manifest.terms():
            hits = manifest.lookup(term)
            assert hits, f"dead term {term!r} listed"
            assert set(hits) <= live


SegmentedMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestSegmented = SegmentedMachine.TestCase
