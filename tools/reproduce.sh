#!/usr/bin/env bash
# Reproduce everything: tests, benchmarks (tables + ablations + studies),
# and the side-by-side paper comparison.  Outputs:
#   test_output.txt, bench_output.txt, REPORT.md, benchmarks/results/*.txt
set -euo pipefail
cd "$(dirname "$0")/.."

python -m pip install -e . --no-build-isolation 2>/dev/null \
    || python setup.py develop

pytest tests/ 2>&1 | tee test_output.txt
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
python -m repro.cli tables --markdown REPORT.md
echo "done: see EXPERIMENTS.md, REPORT.md and benchmarks/results/"
